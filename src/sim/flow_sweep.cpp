#include <openspace/sim/flow_sweep.hpp>

#include <algorithm>
#include <memory>

#include <openspace/geo/error.hpp>
#include <openspace/routing/engine.hpp>

namespace openspace {
namespace {

/// Fold one step's selected routes into the sweep checksum. Hashes the node
/// sequence (not costs): the graphs are checksum-compared elsewhere, and the
/// node sequence is what the simulator actually consumes.
std::uint64_t mixRoute(std::uint64_t h, const Route& r) {
  h = fnv1a(h, r.nodes.size());
  for (const NodeId n : r.nodes) h = fnv1a(h, n.value());
  return h;
}

}  // namespace

FlowSweepReport runFlowSweep(const TopologyBuilder& builder,
                             const SnapshotOptions& opt,
                             const std::vector<FlowSweepDemand>& demands,
                             const FlowSweepConfig& cfg) {
  if (cfg.stepS <= 0.0 || cfg.horizonS <= 0.0) {
    throw InvalidArgumentError("runFlowSweep: step/horizon must be > 0");
  }
  for (const FlowSweepDemand& d : demands) {
    if (!d.src.isValid() || !d.dst.isValid()) {
      throw InvalidArgumentError("runFlowSweep: demand endpoint is unset");
    }
  }

  // Distinct sources in first-appearance order: one routing tree each,
  // carried across steps for repair.
  std::vector<NodeId> sources;
  std::vector<std::size_t> demandSource(demands.size());
  for (std::size_t i = 0; i < demands.size(); ++i) {
    const auto it = std::find(sources.begin(), sources.end(), demands[i].src);
    demandSource[i] = static_cast<std::size_t>(it - sources.begin());
    if (it == sources.end()) sources.push_back(demands[i].src);
  }
  std::vector<PathTree> trees(sources.size());

  const TemporalCostModel model = delayCostModel();
  std::unique_ptr<IncrementalTopology> inc;
  if (cfg.build == TemporalBuild::Delta) {
    inc = std::make_unique<IncrementalTopology>(builder, opt, model);
  }

  FlowSweepReport out;
  const double endS = cfg.t0S + cfg.horizonS;
  std::size_t stepIdx = 0;
  for (double t = cfg.t0S; t < endS; t += cfg.stepS, ++stepIdx) {
    FlowSweepStep step;
    step.tS = t;

    std::shared_ptr<const CompactGraph> graph;
    if (inc) {
      inc->step(t);
      graph = inc->graph();
      step.structural = inc->lastDelta().structural;
    } else {
      // Executable spec: full snapshot + compile, fresh trees below. Every
      // step rebuilds, so every step is structural by definition.
      graph = std::make_shared<const CompactGraph>(
          compileGraph(builder.snapshot(t, opt), model.link));
      step.structural = true;
    }

    const RouteEngine engine(graph);
    bool repairedAll = !sources.empty();
    for (std::size_t s = 0; s < sources.size(); ++s) {
      if (inc && trees[s].valid()) {
        TreeRepairStats stats;
        trees[s] = engine.repairShortestPathTree(trees[s], &stats);
        repairedAll = repairedAll && stats.repaired;
      } else {
        trees[s] = engine.shortestPathTree(sources[s]);
        repairedAll = false;
      }
    }
    step.treesRepaired = repairedAll;

    FlowSimConfig simCfg = cfg.sim;
    simCfg.startS = t;
    simCfg.durationS = std::min(t + cfg.stepS, endS) - t;
    simCfg.seed = fnv1a(cfg.sim.seed, stepIdx);
    FlowSimulator sim(graph, simCfg);

    // The checksum folds only mode-independent material: the graphs are
    // bit-identical across build modes and repaired trees equal fresh
    // trees, so the route sequences and record streams must match too.
    for (std::size_t i = 0; i < demands.size(); ++i) {
      const Route r = trees[demandSource[i]].routeTo(demands[i].dst);
      out.checksum = mixRoute(out.checksum, r);
      if (!r.valid()) continue;  // all packets would drop NoRoute
      FlowSpec spec;
      spec.src = demands[i].src;
      spec.dst = demands[i].dst;
      spec.rateBps = demands[i].rateBps;
      spec.packetBits = demands[i].packetBits;
      spec.startS = simCfg.startS;
      spec.stopS = simCfg.startS + simCfg.durationS;
      sim.addFlow(spec, r);
    }

    const FlowSimReport rep = sim.run();
    step.packetsOffered = rep.packetsOffered;
    step.packetsDelivered = rep.packetsDelivered;
    step.packetsDropped = rep.packetsDropped;
    step.recordChecksum = rep.recordChecksum;
    out.checksum = fnv1a(out.checksum, rep.recordChecksum);

    out.packetsOffered += rep.packetsOffered;
    out.packetsDelivered += rep.packetsDelivered;
    out.packetsDropped += rep.packetsDropped;
    if (step.structural) ++out.structuralSteps;
    if (step.treesRepaired) ++out.repairedSteps;
    out.steps.push_back(step);
  }
  return out;
}

}  // namespace openspace
