#include <openspace/sim/population.hpp>

#include <algorithm>
#include <cmath>
#include <numbers>

#include <openspace/coverage/footprint_index.hpp>
#include <openspace/geo/error.hpp>
#include <openspace/geo/units.hpp>
#include <openspace/geo/wgs84.hpp>
#include <openspace/orbit/snapshot.hpp>
#include <openspace/orbit/visibility.hpp>

namespace openspace {

PopulationModel::PopulationModel(std::vector<PopulationCenter> centers,
                                 double ruralFraction)
    : centers_(std::move(centers)), ruralFraction_(ruralFraction) {
  if (centers_.empty()) {
    throw InvalidArgumentError("PopulationModel: at least one center required");
  }
  if (ruralFraction < 0.0 || ruralFraction > 1.0) {
    throw InvalidArgumentError("PopulationModel: rural fraction outside [0,1]");
  }
  for (const auto& c : centers_) {
    if (c.weightMillions <= 0.0) {
      throw InvalidArgumentError("PopulationModel: center weight must be > 0");
    }
    totalWeight_ += c.weightMillions;
  }
}

std::vector<SampledUser> PopulationModel::sampleUsers(int n, Rng& rng) const {
  if (n < 0) throw InvalidArgumentError("sampleUsers: n must be >= 0");
  std::vector<SampledUser> users;
  users.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    SampledUser u;
    if (rng.chance(ruralFraction_)) {
      // Rural: area-uniform, clipped to inhabited latitudes.
      do {
        u.location = rng.surfacePoint();
      } while (std::abs(u.location.latitudeRad) > deg2rad(65.0));
      u.weight = 1.0;
    } else {
      // Urban: pick a center weighted by population, scatter ~200 km.
      double pick = rng.uniform(0.0, totalWeight_);
      const PopulationCenter* chosen = &centers_.back();
      for (const auto& c : centers_) {
        pick -= c.weightMillions;
        if (pick <= 0.0) {
          chosen = &c;
          break;
        }
      }
      const double scatterRad = 200e3 / wgs84::kMeanRadiusM;
      u.location.latitudeRad =
          std::clamp(chosen->location.latitudeRad +
                         rng.normal(0.0, scatterRad),
                     -std::numbers::pi / 2, std::numbers::pi / 2);
      u.location.longitudeRad = std::remainder(
          chosen->location.longitudeRad +
              rng.normal(0.0, scatterRad /
                                  std::max(0.2, std::cos(chosen->location
                                                             .latitudeRad))),
          2.0 * std::numbers::pi);
      u.weight = 1.0 + chosen->weightMillions / 5.0;  // urban demand density
    }
    users.push_back(u);
  }
  return users;
}

double PopulationModel::demandWeightedCoverage(
    const std::vector<OrbitalElements>& sats, double tSeconds,
    double minElevationRad, int samples, Rng& rng) const {
  if (samples <= 0) {
    throw InvalidArgumentError("demandWeightedCoverage: samples must be > 0");
  }
  if (sats.empty()) return 0.0;
  const auto snap = SnapshotCache::global().at(sats, tSeconds);
  // Users are sampled before any visibility work, exactly as the brute
  // loop did, so the RNG draw sequence is unchanged; the footprint index
  // then answers each user's any-visible query over O(candidates)
  // satellites with the same elevationAngleRad predicate the brute scan
  // applied (an order-independent boolean, so the result bits match).
  const auto footprints = FootprintIndex2::compiled(snap, minElevationRad);
  const auto users = sampleUsers(samples, rng);
  double total = 0.0;
  double covered = 0.0;
  for (const SampledUser& u : users) {
    total += u.weight;
    const Vec3 userEcef = geodeticToEcef(u.location);
    if (footprints->anyVisibleFrom(userEcef)) covered += u.weight;
  }
  return (total > 0.0) ? covered / total : 0.0;
}

double diurnalDemandFactor(double utcSeconds, double longitudeRad) {
  // Local solar time offset: 1 rad of east longitude = 86400/(2*pi) s.
  const double localS =
      utcSeconds + longitudeRad * 86'400.0 / (2.0 * std::numbers::pi);
  const double dayFrac =
      std::fmod(std::fmod(localS, 86'400.0) + 86'400.0, 86'400.0) / 86'400.0;
  // Cosine bump peaking at 20:00 local (dayFrac ~0.833), trough at 08:00.
  const double peakPhase = 2.0 * std::numbers::pi * (dayFrac - 20.0 / 24.0);
  return 0.65 + 0.35 * std::cos(peakPhase);
}

PopulationModel defaultWorldPopulation() {
  std::vector<PopulationCenter> centers = {
      {"tokyo", Geodetic::fromDegrees(35.68, 139.69), 37.0},
      {"delhi", Geodetic::fromDegrees(28.61, 77.21), 32.0},
      {"shanghai", Geodetic::fromDegrees(31.23, 121.47), 28.0},
      {"sao-paulo", Geodetic::fromDegrees(-23.55, -46.63), 22.0},
      {"mexico-city", Geodetic::fromDegrees(19.43, -99.13), 22.0},
      {"cairo", Geodetic::fromDegrees(30.04, 31.24), 21.0},
      {"mumbai", Geodetic::fromDegrees(19.08, 72.88), 21.0},
      {"beijing", Geodetic::fromDegrees(39.90, 116.41), 21.0},
      {"dhaka", Geodetic::fromDegrees(23.81, 90.41), 22.0},
      {"osaka", Geodetic::fromDegrees(34.69, 135.50), 19.0},
      {"new-york", Geodetic::fromDegrees(40.71, -74.01), 19.0},
      {"karachi", Geodetic::fromDegrees(24.86, 67.01), 17.0},
      {"lagos", Geodetic::fromDegrees(6.52, 3.38), 15.0},
      {"istanbul", Geodetic::fromDegrees(41.01, 28.98), 15.0},
      {"kinshasa", Geodetic::fromDegrees(-4.44, 15.27), 15.0},
      {"london", Geodetic::fromDegrees(51.51, -0.13), 11.0},
      {"paris", Geodetic::fromDegrees(48.86, 2.35), 11.0},
      {"jakarta", Geodetic::fromDegrees(-6.21, 106.85), 11.0},
      {"moscow", Geodetic::fromDegrees(55.76, 37.62), 12.0},
      {"los-angeles", Geodetic::fromDegrees(34.05, -118.24), 13.0},
      {"nairobi", Geodetic::fromDegrees(-1.29, 36.82), 5.0},
      {"sydney", Geodetic::fromDegrees(-33.87, 151.21), 5.0},
      {"anchorage", Geodetic::fromDegrees(61.22, -149.90), 0.4},
      {"reykjavik", Geodetic::fromDegrees(64.15, -21.94), 0.2},
  };
  return PopulationModel(std::move(centers), 0.30);
}

}  // namespace openspace
