// Regulatory constraints (paper §5(3)).
//
// "Different countries and regions have varying policies on satellite
// communications, such as different spectrum allocation policies, as well
// as independent licensing requirements. ... there is the question of how
// to maintain a user's data privacy requirements when their traffic is
// routed to a groundstation outside their region."
//
// RegulatoryRegime models jurisdictions as latitude/longitude boxes with:
//  * a spectrum policy (which ground bands may be used there),
//  * per-satellite landing-rights licensing fees,
//  * data-egress rules: which regions' ground stations may carry a user's
//    traffic to the Internet (privacy trust sets).
// complianceConstrainedCost() turns the rules into a routing filter so
// compliant paths come out of the ordinary shortest-path machinery.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include <openspace/phy/bands.hpp>
#include <openspace/routing/route.hpp>

namespace openspace {

using RegionId = std::uint32_t;

/// A lat/lon bounding box (degrees would be error-prone here; radians like
/// the rest of the library). Longitude ranges may wrap across the
/// antimeridian (lonMin > lonMax means the box spans it).
struct RegionExtent {
  double latMinRad = 0.0;
  double latMaxRad = 0.0;
  double lonMinRad = 0.0;
  double lonMaxRad = 0.0;

  bool contains(const Geodetic& g) const;
};

/// One jurisdiction's policy.
struct RegionPolicy {
  RegionId id = 0;
  std::string name;
  RegionExtent extent;
  std::vector<Band> allowedGroundBands;  ///< Spectrum allocation policy.
  std::vector<RegionId> trustedRegions;  ///< Data may egress via gateways
                                         ///< here (always includes itself).
  double landingRightsFeeUsd = 0.0;      ///< Per satellite serving the region.
};

/// Registry of jurisdictions with lookup and compliance predicates.
class RegulatoryRegime {
 public:
  /// Register a region. Throws InvalidArgumentError for duplicate ids or
  /// inverted latitude bounds.
  void addRegion(RegionPolicy policy);

  /// The region containing a point (first registered wins on overlap);
  /// nullopt in international/unregistered territory.
  std::optional<RegionId> regionOf(const Geodetic& point) const;

  const RegionPolicy& policy(RegionId id) const;
  std::size_t regionCount() const noexcept { return regions_.size(); }

  /// Is `band` licensed for ground links in `region`?
  bool groundBandAllowed(RegionId region, Band band) const;

  /// May traffic of a user homed in `userRegion` exit to the Internet via
  /// a gateway located in `gatewayRegion`?
  bool egressAllowed(RegionId userRegion, RegionId gatewayRegion) const;

  /// Total landing-rights fees a provider owes to serve all registered
  /// regions with `satellites` spacecraft.
  double totalLandingFeesUsd(int satellites) const;

 private:
  std::vector<RegionPolicy> regions_;
};

/// Wrap a routing cost so the path is regulation-compliant for a user
/// homed in `userRegion`:
///  * ground links (GSL/user) whose ground endpoint sits in a region where
///    the link's band is not licensed become unroutable;
///  * GSL links into gateways in regions `userRegion` does not trust are
///    unroutable (data-privacy egress rule). Gateways in unregistered
///    territory are treated as untrusted.
LinkCostFn complianceConstrainedCost(LinkCostFn base,
                                     const RegulatoryRegime& regime,
                                     RegionId userRegion);

/// Convenience: a three-region example regime (Americas / EMEA / APAC)
/// with divergent band and trust policies, used by tests and benches.
RegulatoryRegime exampleGlobalRegime();

}  // namespace openspace
