#include <openspace/regulation/regime.hpp>

#include <algorithm>

#include <openspace/geo/error.hpp>
#include <openspace/geo/units.hpp>

namespace openspace {

bool RegionExtent::contains(const Geodetic& g) const {
  if (g.latitudeRad < latMinRad || g.latitudeRad > latMaxRad) return false;
  if (lonMinRad <= lonMaxRad) {
    return g.longitudeRad >= lonMinRad && g.longitudeRad <= lonMaxRad;
  }
  // Wrapping box across the antimeridian.
  return g.longitudeRad >= lonMinRad || g.longitudeRad <= lonMaxRad;
}

void RegulatoryRegime::addRegion(RegionPolicy policy) {
  if (policy.extent.latMinRad > policy.extent.latMaxRad) {
    throw InvalidArgumentError("addRegion: inverted latitude bounds");
  }
  for (const auto& r : regions_) {
    if (r.id == policy.id) {
      throw InvalidArgumentError("addRegion: duplicate region id");
    }
  }
  // A region always trusts itself.
  if (std::find(policy.trustedRegions.begin(), policy.trustedRegions.end(),
                policy.id) == policy.trustedRegions.end()) {
    policy.trustedRegions.push_back(policy.id);
  }
  regions_.push_back(std::move(policy));
}

std::optional<RegionId> RegulatoryRegime::regionOf(const Geodetic& point) const {
  for (const auto& r : regions_) {
    if (r.extent.contains(point)) return r.id;
  }
  return std::nullopt;
}

const RegionPolicy& RegulatoryRegime::policy(RegionId id) const {
  for (const auto& r : regions_) {
    if (r.id == id) return r;
  }
  throw NotFoundError("RegulatoryRegime: unknown region " + std::to_string(id));
}

bool RegulatoryRegime::groundBandAllowed(RegionId region, Band band) const {
  const RegionPolicy& p = policy(region);
  return std::find(p.allowedGroundBands.begin(), p.allowedGroundBands.end(),
                   band) != p.allowedGroundBands.end();
}

bool RegulatoryRegime::egressAllowed(RegionId userRegion,
                                     RegionId gatewayRegion) const {
  const RegionPolicy& p = policy(userRegion);
  return std::find(p.trustedRegions.begin(), p.trustedRegions.end(),
                   gatewayRegion) != p.trustedRegions.end();
}

double RegulatoryRegime::totalLandingFeesUsd(int satellites) const {
  if (satellites < 0) {
    throw InvalidArgumentError("totalLandingFeesUsd: negative fleet");
  }
  double total = 0.0;
  for (const auto& r : regions_) total += r.landingRightsFeeUsd * satellites;
  return total;
}

LinkCostFn complianceConstrainedCost(LinkCostFn base,
                                     const RegulatoryRegime& regime,
                                     RegionId userRegion) {
  return [base = std::move(base), &regime, userRegion](
             const NetworkGraph& g, const Link& l, ProviderId home) -> double {
    constexpr double kForbidden = std::numeric_limits<double>::infinity();
    if (l.type == LinkType::Gsl || l.type == LinkType::UserLink) {
      // Identify the ground endpoint.
      const Node& na = g.node(l.a);
      const Node& nb = g.node(l.b);
      const Node& ground = na.isSatellite() ? nb : na;
      if (!ground.location) return kForbidden;  // malformed: be safe
      const auto region = regime.regionOf(*ground.location);
      // Spectrum policy: the ground link's band must be licensed locally.
      if (region && !regime.groundBandAllowed(*region, l.band)) {
        return kForbidden;
      }
      // Privacy egress policy applies to gateways (Internet exits).
      if (l.type == LinkType::Gsl) {
        if (!region) return kForbidden;  // unregistered territory: untrusted
        if (!regime.egressAllowed(userRegion, *region)) return kForbidden;
      }
    }
    return base(g, l, home);
  };
}

RegulatoryRegime exampleGlobalRegime() {
  RegulatoryRegime regime;

  RegionPolicy americas;
  americas.id = 1;
  americas.name = "Americas";
  americas.extent = {deg2rad(-60.0), deg2rad(75.0), deg2rad(-170.0),
                     deg2rad(-30.0)};
  americas.allowedGroundBands = {Band::Ku, Band::Ka};
  americas.trustedRegions = {2};  // trusts EMEA gateways (plus itself)
  americas.landingRightsFeeUsd = 12'145.0;
  regime.addRegion(americas);

  RegionPolicy emea;
  emea.id = 2;
  emea.name = "EMEA";
  emea.extent = {deg2rad(-40.0), deg2rad(75.0), deg2rad(-30.0), deg2rad(60.0)};
  emea.allowedGroundBands = {Band::Ku};
  emea.trustedRegions = {1};  // mutual trust with Americas
  emea.landingRightsFeeUsd = 9'500.0;
  regime.addRegion(emea);

  RegionPolicy apac;
  apac.id = 3;
  apac.name = "APAC";
  apac.extent = {deg2rad(-50.0), deg2rad(60.0), deg2rad(60.0),
                 deg2rad(-170.0)};  // wraps the antimeridian
  apac.allowedGroundBands = {Band::Ku, Band::Ka};
  apac.trustedRegions = {};  // strict data-localization: only itself
  apac.landingRightsFeeUsd = 15'000.0;
  regime.addRegion(apac);

  return regime;
}

}  // namespace openspace
