#include <openspace/mac/beacon.hpp>

#include <cmath>

#include <openspace/geo/error.hpp>

namespace openspace {

BeaconSchedule::BeaconSchedule(double periodS) : periodS_(periodS) {
  if (periodS <= 0.0) {
    throw InvalidArgumentError("BeaconSchedule: period must be > 0");
  }
}

double BeaconSchedule::phaseOf(SatelliteId id) const {
  // Cheap integer hash -> [0, period) stagger; avoids synchronized beacons
  // from satellites registered consecutively.
  std::uint64_t h = static_cast<std::uint64_t>(id.value()) * 0x9E3779B97F4A7C15ull;
  h ^= h >> 31;
  return periodS_ * static_cast<double>(h % 10'000) / 10'000.0;
}

double BeaconSchedule::nextBeaconTime(SatelliteId id, double tSeconds) const {
  const double phase = phaseOf(id);
  const double k = std::ceil((tSeconds - phase) / periodS_);
  return phase + std::max(0.0, k) * periodS_;
}

int BeaconSchedule::beaconCount(SatelliteId id, double t0S, double t1S) const {
  if (t1S <= t0S) return 0;
  int count = 0;
  for (double t = nextBeaconTime(id, t0S); t < t1S;
       t = nextBeaconTime(id, t + periodS_ / 2.0)) {
    ++count;
  }
  return count;
}

}  // namespace openspace
