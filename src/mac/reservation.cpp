#include <openspace/mac/reservation.hpp>

#include <algorithm>
#include <vector>

#include <openspace/geo/error.hpp>

namespace openspace {

MacSimResult simulateReservationMac(const ReservationConfig& cfg, int nodes,
                                    double durationS, Rng& rng) {
  if (nodes < 1) {
    throw InvalidArgumentError("simulateReservationMac: nodes must be >= 1");
  }
  if (durationS <= 0.0) {
    throw InvalidArgumentError("simulateReservationMac: duration must be > 0");
  }
  if (cfg.reservationMinislots < 1 || cfg.dataSlots < 1 || cfg.minislotS <= 0.0 ||
      cfg.dataSlotS <= 0.0 || cfg.guardS < 0.0) {
    throw InvalidArgumentError("simulateReservationMac: degenerate config");
  }

  const std::size_t n = static_cast<std::size_t>(nodes);
  // Saturated: every station always has a head-of-queue frame; track when
  // that frame became pending for access-delay accounting.
  std::vector<double> pendingSince(n, 0.0);

  MacSimResult r;
  std::vector<double> delays;
  double t = 0.0;
  double usefulAirtime = 0.0;
  double overheadTotal = 0.0;
  double attempts = 0.0;
  double collisions = 0.0;

  std::vector<int> slotChoice(n);
  std::vector<int> slotCount(static_cast<std::size_t>(cfg.reservationMinislots));

  // p-persistent contention: stations throttle their request probability so
  // the expected number of requests matches the minislot supply (classic
  // stabilized-ALOHA control; keeps the reservation channel efficient at
  // any population size).
  const double pRequest =
      std::min(1.0, static_cast<double>(cfg.reservationMinislots) /
                        static_cast<double>(nodes));

  while (t < durationS) {
    const double contentionSpan = cfg.reservationMinislots * cfg.minislotS;

    // Contention phase: each saturated station requests with probability
    // pRequest in a uniformly chosen minislot.
    std::fill(slotCount.begin(), slotCount.end(), 0);
    for (std::size_t i = 0; i < n; ++i) {
      if (!rng.chance(pRequest)) {
        slotChoice[i] = -1;
        continue;
      }
      slotChoice[i] =
          static_cast<int>(rng.uniformInt(0, cfg.reservationMinislots - 1));
      ++slotCount[static_cast<std::size_t>(slotChoice[i])];
      attempts += 1.0;
    }

    // Winners: unique minislots, granted data slots in minislot order.
    std::vector<std::size_t> winners;
    for (int s = 0;
         s < cfg.reservationMinislots &&
         winners.size() < static_cast<std::size_t>(cfg.dataSlots);
         ++s) {
      if (slotCount[static_cast<std::size_t>(s)] != 1) {
        if (slotCount[static_cast<std::size_t>(s)] > 1) {
          collisions += slotCount[static_cast<std::size_t>(s)];
        }
        continue;
      }
      for (std::size_t i = 0; i < n; ++i) {
        if (slotChoice[i] == s) {
          winners.push_back(i);
          break;
        }
      }
    }

    // Data phase: winners transmit collision-free.
    double slotStart = t + contentionSpan;
    for (const std::size_t w : winners) {
      delays.push_back(slotStart - pendingSince[w]);
      usefulAirtime += cfg.dataSlotS;
      overheadTotal +=
          contentionSpan /
              static_cast<double>(std::max<std::size_t>(1, winners.size())) +
          cfg.guardS;
      r.deliveredFrames += 1;
      r.offeredFrames += 1;
      slotStart += cfg.dataSlotS + cfg.guardS;
      pendingSince[w] = slotStart;  // next frame pending immediately
    }
    t += cfg.frameDurationS();
  }

  if (!delays.empty()) {
    std::sort(delays.begin(), delays.end());
    double sum = 0.0;
    for (const double d : delays) sum += d;
    r.meanAccessDelayS = sum / static_cast<double>(delays.size());
    r.p95AccessDelayS = delays[static_cast<std::size_t>(
        0.95 * static_cast<double>(delays.size() - 1))];
  }
  if (r.deliveredFrames > 0) r.meanOverheadS = overheadTotal / r.deliveredFrames;
  r.throughputFraction = (t > 0.0) ? usefulAirtime / t : 0.0;
  r.collisionFraction = (attempts > 0.0) ? collisions / attempts : 0.0;
  return r;
}

}  // namespace openspace
