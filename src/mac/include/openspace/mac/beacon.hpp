// Standardized OpenSpace beacon.
//
// §2.1/§2.2: every OpenSpace satellite periodically broadcasts an RF beacon
// advertising its presence, identity, orbital information and link
// capabilities. The same beacon drives (a) ISL discovery between satellites
// and (b) user association (users pick the closest advertised satellite).
#pragma once

#include <vector>

#include <openspace/orbit/elements.hpp>
#include <openspace/orbit/ephemeris.hpp>
#include <openspace/phy/bands.hpp>

namespace openspace {

/// Link capabilities advertised in a beacon.
struct LinkCapabilities {
  std::vector<Band> islBands;      ///< Must include at least one RF band.
  bool hasLaserTerminal = false;
  /// Body-frame pointing of the laser head, advertised so a peer can decide
  /// geometric feasibility before initiating optical pairing (§2.1: the
  /// pair request contains "the exact position of its laser diodes").
  Vec3 laserBoresightBody{1.0, 0.0, 0.0};
  int maxIslCount = 4;             ///< Terminal/power bound on simultaneous ISLs.
};

/// The over-the-air beacon payload.
struct BeaconMessage {
  SatelliteId satellite{};
  ProviderId provider{};
  double txTimeS = 0.0;
  OrbitalElements elements;  ///< Current published orbit (public topology).
  LinkCapabilities capabilities;
};

/// Beacon schedule: every satellite beacons with the standardized period,
/// phase-staggered by id so co-located satellites do not collide every time.
class BeaconSchedule {
 public:
  /// Throws InvalidArgumentError if period <= 0.
  explicit BeaconSchedule(double periodS);

  /// Time of the first beacon at or after `tSeconds` for satellite `id`.
  double nextBeaconTime(SatelliteId id, double tSeconds) const;

  /// Number of beacons satellite `id` emits in [t0S, t1S).
  int beaconCount(SatelliteId id, double t0S, double t1S) const;

  double periodS() const noexcept { return periodS_; }

 private:
  double phaseOf(SatelliteId id) const;
  double periodS_;
};

}  // namespace openspace
