// CSMA/CA contention model.
//
// The paper (§2.1) notes prior work found CSMA/CA gives satellites
// synchronization-free flexibility "however is prone to higher overhead and
// corresponding larger latency due to Inter-Frame Spacing and backoff
// window requirements". This module quantifies exactly that trade-off with
// a slotted Monte-Carlo contention simulator plus closed-form per-frame
// overhead accounting, so the MAC benchmark can reproduce the claim.
#pragma once

#include <cstdint>

#include <openspace/geo/rng.hpp>

namespace openspace {

/// CSMA/CA (802.11-DCF-like) parameters adapted to ISL timescales.
struct CsmaConfig {
  double slotTimeS = 50e-6;
  double sifsS = 30e-6;
  double difsS = 110e-6;      ///< Inter-frame spacing the paper calls out.
  int cwMin = 16;             ///< Initial contention window (slots).
  int cwMax = 1024;           ///< Cap after repeated collisions.
  int maxRetries = 7;
  double frameAirtimeS = 1.5e-3;  ///< Payload transmission time.
  double ackAirtimeS = 50e-6;
};

/// Aggregate results of a contention simulation.
struct MacSimResult {
  double offeredFrames = 0;        ///< Frames the sources generated.
  double deliveredFrames = 0;      ///< Frames successfully acknowledged.
  double droppedFrames = 0;        ///< Frames dropped after maxRetries.
  double meanAccessDelayS = 0.0;   ///< Queue head -> successful TX start.
  double p95AccessDelayS = 0.0;
  double meanOverheadS = 0.0;      ///< IFS + backoff time per delivered frame.
  double throughputFraction = 0.0; ///< Useful airtime / wall time.
  double collisionFraction = 0.0;      ///< Collisions per attempt.
};

/// Simulate `nodes` saturated stations contending for one channel for
/// `durationS` of simulated time. Deterministic given the Rng seed.
/// Throws InvalidArgumentError on nodes < 1 or durationS <= 0.
MacSimResult simulateCsmaCa(const CsmaConfig& cfg, int nodes, double durationS,
                            Rng& rng);

/// Closed-form per-frame overhead (DIFS + mean initial backoff + SIFS) for a
/// collision-free channel: the floor any CSMA/CA frame pays even alone.
double csmaPerFrameOverheadS(const CsmaConfig& cfg);

/// TDMA reference: round-robin slot schedule for `nodes` stations.
struct TdmaConfig {
  double slotS = 2e-3;    ///< One frame per slot.
  double guardS = 100e-6; ///< Guard interval absorbing sync error.
};

/// Simulate saturated TDMA for comparison with CSMA/CA. Access delay is the
/// wait for the node's slot; no collisions by construction.
MacSimResult simulateTdma(const TdmaConfig& cfg, int nodes, double durationS);

}  // namespace openspace
