// OFDMA downlink scheduler for satellite-to-user links.
//
// §2.1: "existing satellite providers have employed OFDM in satellite-to-
// ground links, and this choice has shown to work well in efficiently
// utilizing the spectrum while minimizing interference with other users."
// A satellite serving many ground users divides its channel into resource
// blocks and allocates them per scheduling epoch.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace openspace {

/// One user's standing downlink demand as seen by the scheduler.
struct OfdmaDemand {
  std::uint64_t userId = 0;
  double demandBps = 0.0;              ///< Requested rate this epoch.
  double spectralEfficiency = 2.0;     ///< From the user's current MODCOD.
  double weight = 1.0;                 ///< QoS weight (plan tier).
};

/// Allocation granted to one user.
struct OfdmaGrant {
  std::uint64_t userId = 0;
  int resourceBlocks = 0;
  double grantedBps = 0.0;
};

/// Scheduler policy.
enum class OfdmaPolicy {
  RoundRobin,        ///< Equal blocks regardless of demand.
  ProportionalFair,  ///< Blocks proportional to weight, capped at demand.
  MaxThroughput,     ///< Blocks to the highest spectral efficiency first.
};

/// OFDMA epoch scheduler over a fixed grid of resource blocks.
class OfdmaScheduler {
 public:
  /// `channelBandwidthHz` divided into `resourceBlocks` equal blocks.
  /// Throws InvalidArgumentError for non-positive parameters.
  OfdmaScheduler(double channelBandwidthHz, int resourceBlocks, OfdmaPolicy policy);

  /// Allocate the epoch's blocks across the demands. Users with zero demand
  /// receive nothing; unused blocks are redistributed (PF/MaxTp) or left
  /// idle (RR). Result is ordered like the input.
  std::vector<OfdmaGrant> schedule(const std::vector<OfdmaDemand>& demands) const;

  /// Bandwidth of one resource block, Hz.
  double blockBandwidthHz() const noexcept;

  int resourceBlocks() const noexcept { return blocks_; }
  OfdmaPolicy policy() const noexcept { return policy_; }

 private:
  double bandwidthHz_;
  int blocks_;
  OfdmaPolicy policy_;
};

}  // namespace openspace
