// Reservation-based MAC (the §2.1 future-work item).
//
// The paper leaves "the development of MAC methods more suitable for
// real-time communications to future work". This module implements the
// classic candidate: a reservation MAC (PRMA/DQRAP-style). Each frame
// opens with R short contention minislots where stations request capacity
// (slotted-ALOHA contention on tiny slots), followed by D data slots
// granted to successful reservations. Contention risk is confined to the
// cheap minislots, so data transfer itself is collision-free — bounding
// access delay far better than CSMA/CA under load while avoiding TDMA's
// rigid static allocation.
#pragma once

#include <openspace/geo/rng.hpp>
#include <openspace/mac/csma.hpp>

namespace openspace {

/// Reservation MAC frame layout.
struct ReservationConfig {
  int reservationMinislots = 6;      ///< Contention opportunities per frame.
  double minislotS = 100e-6;         ///< Length of one request minislot.
  int dataSlots = 4;                 ///< Collision-free data slots per frame.
  double dataSlotS = 2e-3;           ///< One frame transmission per slot.
  double guardS = 50e-6;             ///< Guard per data slot.

  double frameDurationS() const {
    return reservationMinislots * minislotS + dataSlots * (dataSlotS + guardS);
  }
};

/// Simulate `nodes` saturated stations under the reservation MAC for
/// `durationS`. A station with a pending frame picks one minislot uniformly
/// at random each frame; unique requests win data slots (up to dataSlots per
/// frame, granted in minislot order); collided or unlucky stations retry
/// next frame. Deterministic given the Rng. Throws InvalidArgumentError on
/// nodes < 1, durationS <= 0 or a degenerate config.
MacSimResult simulateReservationMac(const ReservationConfig& cfg, int nodes,
                                    double durationS, Rng& rng);

}  // namespace openspace
