#include <openspace/mac/csma.hpp>

#include <algorithm>
#include <vector>

#include <openspace/geo/error.hpp>

namespace openspace {

namespace {

struct Station {
  int backoffSlots = 0;
  int cw = 0;
  int retries = 0;
  double frameReadyAtS = 0.0;   ///< When the current head-of-queue frame arrived.
  double backoffSpentS = 0.0;   ///< IFS+backoff accumulated for this frame.
};

int drawBackoff(Rng& rng, int cw) {
  return static_cast<int>(rng.uniformInt(0, cw - 1));
}

}  // namespace

double csmaPerFrameOverheadS(const CsmaConfig& cfg) {
  const double meanInitialBackoff =
      cfg.slotTimeS * static_cast<double>(cfg.cwMin - 1) / 2.0;
  return cfg.difsS + meanInitialBackoff + cfg.sifsS;
}

MacSimResult simulateCsmaCa(const CsmaConfig& cfg, int nodes, double durationS,
                            Rng& rng) {
  if (nodes < 1) throw InvalidArgumentError("simulateCsmaCa: nodes must be >= 1");
  if (durationS <= 0.0) {
    throw InvalidArgumentError("simulateCsmaCa: duration must be > 0");
  }

  std::vector<Station> st(static_cast<std::size_t>(nodes));
  for (auto& s : st) {
    s.cw = cfg.cwMin;
    s.backoffSlots = drawBackoff(rng, s.cw);
  }

  MacSimResult r;
  std::vector<double> delays;
  double t = 0.0;
  double usefulAirtime = 0.0;
  double overheadTotal = 0.0;
  double attempts = 0.0;
  double collisions = 0.0;

  while (t < durationS) {
    // Channel idle: everyone waits DIFS then counts down backoff together.
    int minB = st[0].backoffSlots;
    for (const auto& s : st) minB = std::min(minB, s.backoffSlots);
    const double idleSpan = cfg.difsS + cfg.slotTimeS * minB;
    t += idleSpan;
    std::vector<std::size_t> txers;
    for (std::size_t i = 0; i < st.size(); ++i) {
      st[i].backoffSpentS += idleSpan;
      st[i].backoffSlots -= minB;
      if (st[i].backoffSlots == 0) txers.push_back(i);
    }
    attempts += static_cast<double>(txers.size());

    if (txers.size() == 1) {
      Station& s = st[txers[0]];
      delays.push_back(t - s.frameReadyAtS);
      overheadTotal += s.backoffSpentS + cfg.sifsS;
      t += cfg.frameAirtimeS + cfg.sifsS + cfg.ackAirtimeS;
      usefulAirtime += cfg.frameAirtimeS;
      r.deliveredFrames += 1;
      r.offeredFrames += 1;
      s = Station{};  // saturated: next frame ready immediately
      s.cw = cfg.cwMin;
      s.backoffSlots = drawBackoff(rng, s.cw);
      s.frameReadyAtS = t;
    } else {
      // Collision: all transmitters burn a frame's airtime, then back off
      // with doubled windows.
      collisions += static_cast<double>(txers.size());
      t += cfg.frameAirtimeS;
      for (const std::size_t i : txers) {
        Station& s = st[i];
        ++s.retries;
        if (s.retries > cfg.maxRetries) {
          r.droppedFrames += 1;
          r.offeredFrames += 1;
          s = Station{};
          s.cw = cfg.cwMin;
          s.frameReadyAtS = t;
        } else {
          s.cw = std::min(s.cw * 2, cfg.cwMax);
        }
        s.backoffSlots = drawBackoff(rng, s.cw);
      }
    }
  }

  if (!delays.empty()) {
    std::sort(delays.begin(), delays.end());
    double sum = 0.0;
    for (const double d : delays) sum += d;
    r.meanAccessDelayS = sum / static_cast<double>(delays.size());
    r.p95AccessDelayS = delays[static_cast<std::size_t>(
        0.95 * static_cast<double>(delays.size() - 1))];
  }
  if (r.deliveredFrames > 0) {
    r.meanOverheadS = overheadTotal / r.deliveredFrames;
  }
  r.throughputFraction = usefulAirtime / t;
  r.collisionFraction = (attempts > 0) ? collisions / attempts : 0.0;
  return r;
}

MacSimResult simulateTdma(const TdmaConfig& cfg, int nodes, double durationS) {
  if (nodes < 1) throw InvalidArgumentError("simulateTdma: nodes must be >= 1");
  if (durationS <= 0.0) {
    throw InvalidArgumentError("simulateTdma: duration must be > 0");
  }
  if (cfg.slotS <= 0.0 || cfg.guardS < 0.0) {
    throw InvalidArgumentError("simulateTdma: non-physical slot/guard");
  }
  const double slotSpan = cfg.slotS + cfg.guardS;
  const double cycle = slotSpan * nodes;

  MacSimResult r;
  const double slots = std::floor(durationS / slotSpan);
  r.offeredFrames = slots;
  r.deliveredFrames = slots;  // saturated, collision-free by construction
  r.droppedFrames = 0;
  // A saturated node's next frame is ready the instant its slot ends and
  // then waits one full cycle minus its own slot for the next turn.
  r.meanAccessDelayS = cycle - cfg.slotS;
  r.p95AccessDelayS = r.meanAccessDelayS;
  r.meanOverheadS = cfg.guardS;
  r.throughputFraction = cfg.slotS / slotSpan;
  r.collisionFraction = 0.0;
  return r;
}

}  // namespace openspace
