#include <openspace/mac/ofdma.hpp>

#include <algorithm>
#include <cmath>
#include <numeric>

#include <openspace/geo/error.hpp>

namespace openspace {

OfdmaScheduler::OfdmaScheduler(double channelBandwidthHz, int resourceBlocks,
                               OfdmaPolicy policy)
    : bandwidthHz_(channelBandwidthHz), blocks_(resourceBlocks), policy_(policy) {
  if (channelBandwidthHz <= 0.0 || resourceBlocks <= 0) {
    throw InvalidArgumentError("OfdmaScheduler: non-positive channel/blocks");
  }
}

double OfdmaScheduler::blockBandwidthHz() const noexcept {
  return bandwidthHz_ / blocks_;
}

std::vector<OfdmaGrant> OfdmaScheduler::schedule(
    const std::vector<OfdmaDemand>& demands) const {
  std::vector<OfdmaGrant> grants(demands.size());
  for (std::size_t i = 0; i < demands.size(); ++i) {
    if (demands[i].demandBps < 0.0 || demands[i].spectralEfficiency <= 0.0 ||
        demands[i].weight < 0.0) {
      throw InvalidArgumentError("OfdmaScheduler: invalid demand entry");
    }
    grants[i].userId = demands[i].userId;
  }

  // Blocks a user still wants: ceil(demand / per-block rate).
  const auto blocksWanted = [&](const OfdmaDemand& d, int granted) {
    const double perBlockBps = d.spectralEfficiency * blockBandwidthHz();
    const int want = static_cast<int>(std::ceil(d.demandBps / perBlockBps));
    return std::max(0, want - granted);
  };

  int remaining = blocks_;
  switch (policy_) {
    case OfdmaPolicy::RoundRobin: {
      // Cycle over users with outstanding demand, one block each pass.
      bool progress = true;
      while (remaining > 0 && progress) {
        progress = false;
        for (std::size_t i = 0; i < demands.size() && remaining > 0; ++i) {
          if (blocksWanted(demands[i], grants[i].resourceBlocks) > 0) {
            ++grants[i].resourceBlocks;
            --remaining;
            progress = true;
          }
        }
      }
      break;
    }
    case OfdmaPolicy::ProportionalFair: {
      // Weighted shares, then largest-remainder on leftovers, capped at demand.
      double totalWeight = 0.0;
      for (const auto& d : demands) {
        if (d.demandBps > 0.0) totalWeight += d.weight;
      }
      if (totalWeight > 0.0) {
        for (std::size_t i = 0; i < demands.size(); ++i) {
          if (demands[i].demandBps <= 0.0) continue;
          const int share = static_cast<int>(
              std::floor(blocks_ * demands[i].weight / totalWeight));
          const int want = blocksWanted(demands[i], 0);
          grants[i].resourceBlocks = std::min(share, want);
          remaining -= grants[i].resourceBlocks;
        }
        // Hand leftovers to whoever still wants blocks, heaviest weight first.
        std::vector<std::size_t> idx(demands.size());
        std::iota(idx.begin(), idx.end(), 0u);
        std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
          return demands[a].weight > demands[b].weight;
        });
        bool progress = true;
        while (remaining > 0 && progress) {
          progress = false;
          for (const std::size_t i : idx) {
            if (remaining == 0) break;
            if (blocksWanted(demands[i], grants[i].resourceBlocks) > 0) {
              ++grants[i].resourceBlocks;
              --remaining;
              progress = true;
            }
          }
        }
      }
      break;
    }
    case OfdmaPolicy::MaxThroughput: {
      // Serve users in descending spectral efficiency until blocks run out.
      std::vector<std::size_t> idx(demands.size());
      std::iota(idx.begin(), idx.end(), 0u);
      std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
        return demands[a].spectralEfficiency > demands[b].spectralEfficiency;
      });
      for (const std::size_t i : idx) {
        if (remaining == 0) break;
        const int give = std::min(remaining, blocksWanted(demands[i], 0));
        grants[i].resourceBlocks = give;
        remaining -= give;
      }
      break;
    }
  }

  for (std::size_t i = 0; i < demands.size(); ++i) {
    grants[i].grantedBps = grants[i].resourceBlocks * blockBandwidthHz() *
                           demands[i].spectralEfficiency;
  }
  return grants;
}

}  // namespace openspace
