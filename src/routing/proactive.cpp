#include <openspace/routing/proactive.hpp>

#include <openspace/geo/error.hpp>

namespace openspace {

ProactiveRouter::ProactiveRouter(const TopologyBuilder& builder,
                                 const SnapshotOptions& opt, double t0S,
                                 double horizonS, double stepS, LinkCostFn cost,
                                 ProviderId home)
    : cost_(std::move(cost)), home_(home) {
  if (stepS <= 0.0 || horizonS <= 0.0) {
    throw InvalidArgumentError("ProactiveRouter: step and horizon must be > 0");
  }
  for (double t = t0S; t <= t0S + horizonS + 1e-9; t += stepS) {
    NetworkGraph g = builder.snapshot(t, opt);
    RouteEngine engine(g, cost_, home_);
    snaps_.emplace(t, Snap{std::move(g), std::move(engine), {}});
  }
}

const ProactiveRouter::Snap& ProactiveRouter::snapFor(double tSeconds) const {
  auto it = snaps_.upper_bound(tSeconds);
  if (it != snaps_.begin()) --it;
  return it->second;
}

const NetworkGraph& ProactiveRouter::snapshotAt(double tSeconds) const {
  return snapFor(tSeconds).graph;
}

Route ProactiveRouter::route(NodeId src, NodeId dst, double tSeconds) const {
  const Snap& s = snapFor(tSeconds);
  auto it = s.trees.find(src);
  if (it == s.trees.end()) {
    // Throws NotFoundError for an unknown source before caching anything.
    it = s.trees.emplace(src, s.engine.shortestPathTree(src)).first;
  }
  return it->second.routeTo(dst);  // NotFoundError for unknown destinations
}

void ProactiveRouter::precomputeTrees(const std::vector<NodeId>& sources) {
  for (auto& [t, s] : snaps_) {
    std::vector<PathTree> trees = s.engine.batchShortestPathTrees(sources);
    for (std::size_t i = 0; i < sources.size(); ++i) {
      s.trees.insert_or_assign(sources[i], std::move(trees[i]));
    }
  }
}

std::vector<double> ProactiveRouter::gridTimes() const {
  std::vector<double> out;
  out.reserve(snaps_.size());
  for (const auto& [t, s] : snaps_) out.push_back(t);
  return out;
}

}  // namespace openspace
