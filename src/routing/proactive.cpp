#include <openspace/routing/proactive.hpp>

#include <openspace/geo/error.hpp>

namespace openspace {

ProactiveRouter::ProactiveRouter(const TopologyBuilder& builder,
                                 const SnapshotOptions& opt, double t0S,
                                 double horizonS, double stepS, LinkCostFn cost,
                                 ProviderId home)
    : cost_(std::move(cost)), home_(home) {
  if (stepS <= 0.0 || horizonS <= 0.0) {
    throw InvalidArgumentError("ProactiveRouter: step and horizon must be > 0");
  }
  for (double t = t0S; t <= t0S + horizonS + 1e-9; t += stepS) {
    snaps_.emplace(t, Snap{builder.snapshot(t, opt), {}});
  }
}

const ProactiveRouter::Snap& ProactiveRouter::snapFor(double tSeconds) const {
  auto it = snaps_.upper_bound(tSeconds);
  if (it != snaps_.begin()) --it;
  return it->second;
}

const NetworkGraph& ProactiveRouter::snapshotAt(double tSeconds) const {
  return snapFor(tSeconds).graph;
}

Route ProactiveRouter::route(NodeId src, NodeId dst, double tSeconds) const {
  const Snap& s = snapFor(tSeconds);
  auto& tree = s.trees[src];
  if (tree.empty()) {
    tree = shortestPathTree(s.graph, src, cost_, home_);
  }
  const auto it = tree.find(dst);
  if (it == tree.end()) {
    if (!s.graph.hasNode(dst)) {
      throw NotFoundError("ProactiveRouter::route: unknown destination");
    }
    return Route{};  // present but unreachable in this snapshot
  }
  return it->second;
}

std::vector<double> ProactiveRouter::gridTimes() const {
  std::vector<double> out;
  out.reserve(snaps_.size());
  for (const auto& [t, s] : snaps_) out.push_back(t);
  return out;
}

}  // namespace openspace
