#include <openspace/routing/route.hpp>

namespace openspace {

CostWeights CostWeights::forQos(QosClass q) {
  CostWeights w;
  switch (q) {
    case QosClass::Bulk:
      // Cheapest transit wins; latency is a tie-breaker.
      w.latencyWeight = 1.0;
      w.bandwidthWeight = 0.0;
      w.tariffWeight = 50.0;
      w.hopPenalty = 0.0;
      break;
    case QosClass::Standard:
      w.latencyWeight = 1.0;
      w.bandwidthWeight = 1e6;   // ~1 cost unit per Mbps-scale bottleneck
      w.tariffWeight = 5.0;
      w.hopPenalty = 1e-4;
      break;
    case QosClass::Premium:
      // Latency- and bandwidth-dominated; tariffs barely matter; prefers
      // laser-grade ISLs outright.
      w.latencyWeight = 4.0;
      w.bandwidthWeight = 5e6;
      w.tariffWeight = 0.5;
      w.hopPenalty = 1e-4;
      w.requireLaserForPremium = true;
      break;
  }
  return w;
}

LinkCostFn makeCostFunction(const CostWeights& weights) {
  return [weights](const NetworkGraph& g, const Link& l,
                   ProviderId home) -> double {
    if (weights.requireLaserForPremium && l.type == LinkType::IslRf) {
      return std::numeric_limits<double>::infinity();
    }
    double cost = weights.latencyWeight * l.totalDelayS() + weights.hopPenalty;
    if (weights.bandwidthWeight > 0.0 && l.capacityBps > 0.0) {
      cost += weights.bandwidthWeight / l.capacityBps;
    }
    cost += weights.tariffWeight * l.tariffUsdPerGb * 1e-3;
    if (weights.foreignPenalty > 0.0 && home.isValid()) {
      // A hop is "foreign" when neither endpoint belongs to the home ISP.
      const bool aHome = g.node(l.a).provider == home;
      const bool bHome = g.node(l.b).provider == home;
      if (!aHome && !bHome) cost += weights.foreignPenalty;
    }
    return cost;
  };
}

LinkCostFn latencyCost() {
  return [](const NetworkGraph&, const Link& l, ProviderId) {
    return l.totalDelayS();
  };
}

}  // namespace openspace
