#include <openspace/routing/temporal.hpp>

#include <limits>

#include <openspace/core/scratch.hpp>
#include <openspace/geo/error.hpp>

namespace openspace {

ContactGraphRouter::ContactGraphRouter(const TopologyBuilder& builder,
                                       const SnapshotOptions& opt, double t0S,
                                       double horizonS, double stepS,
                                       TemporalBuild build) {
  if (stepS <= 0.0 || horizonS <= 0.0) {
    throw InvalidArgumentError("ContactGraphRouter: step/horizon must be > 0");
  }
  // Both branches compile edge weight == total link delay; the delta path
  // is pinned bit-identical to the fresh path by property tests, so the
  // router's results are independent of the build mode.
  if (build == TemporalBuild::Delta) {
    IncrementalTopology inc(builder, opt, delayCostModel());
    for (double t = t0S; t < t0S + horizonS; t += stepS) {
      inc.step(t);
      snaps_.push_back({t, std::min(t + stepS, t0S + horizonS), inc.graph()});
    }
  } else {
    const CompactGraph::CostFn delayCost = delayCostModel().link;
    for (double t = t0S; t < t0S + horizonS; t += stepS) {
      snaps_.push_back(
          {t, std::min(t + stepS, t0S + horizonS),
           std::make_shared<const CompactGraph>(
               compileGraph(builder.snapshot(t, opt), delayCost))});
    }
  }
  gridEndS_ = t0S + horizonS;
  // The flat label arrays in earliestArrival() are carried across intervals
  // by dense index, which is only sound when every interval numbers the
  // nodes identically. The builder emits nodes in a fixed order, so this
  // holds by construction; fail loudly if that ever changes.
  for (const Interval& iv : snaps_) {
    if (iv.csr->nodes() != snaps_.front().csr->nodes()) {
      throw StateError(
          "ContactGraphRouter: snapshot node ordering changed across intervals");
    }
  }
}

TemporalRoute ContactGraphRouter::earliestArrival(NodeId src, NodeId dst,
                                                  double tStartS) const {
  if (snaps_.empty()) throw StateError("ContactGraphRouter: no snapshots");
  const CompactGraph& first = *snaps_.front().csr;
  const std::uint32_t srcIdx = first.indexOf(src);
  const std::uint32_t dstIdx = first.indexOf(dst);
  if (srcIdx == CompactGraph::kInvalidIndex ||
      dstIdx == CompactGraph::kInvalidIndex) {
    throw NotFoundError("earliestArrival: unknown node");
  }

  TemporalRoute out;
  out.departureS = tStartS;

  constexpr double kInf = std::numeric_limits<double>::infinity();
  const std::size_t n = first.nodeCount();
  // Labels persist across intervals: stored messages wait on their node
  // until a later contact opens.
  std::vector<double> arrival(n, kInf);
  std::vector<double> inFlight(n, 0.0);
  std::vector<int> hops(n, 0);
  arrival[srcIdx] = tStartS;

  DaryHeap pq;
  int intervals = 0;
  for (const Interval& iv : snaps_) {
    if (iv.endS < tStartS) continue;  // before the message exists
    ++intervals;
    const CompactGraph& csr = *iv.csr;

    // Multi-source Dijkstra within this interval: a node participates once
    // its stored message is present (arrival <= iv.endS); transmission can
    // start no earlier than max(arrival, iv.startS).
    pq.clear();
    for (std::uint32_t u = 0; u < n; ++u) {
      if (arrival[u] <= iv.endS) pq.push(std::max(arrival[u], iv.startS), u);
    }
    while (!pq.empty()) {
      const auto [t, u] = pq.pop();
      if (std::max(arrival[u], iv.startS) < t) continue;  // stale entry
      if (t > iv.endS) continue;
      for (std::uint32_t e = csr.rowBegin(u); e < csr.rowEnd(u); ++e) {
        const std::uint32_t v = csr.edgeTarget(e);
        const double delayS = csr.edgeCost(e);
        const double arrive = t + delayS;
        if (arrive > iv.endS) continue;  // contact closes mid-flight
        if (arrive < arrival[v]) {
          arrival[v] = arrive;
          inFlight[v] = inFlight[u] + delayS;
          hops[v] = hops[u] + 1;
          pq.push(arrive, v);
        }
      }
    }

    if (arrival[dstIdx] <= iv.endS) {
      out.reachable = true;
      out.arrivalS = arrival[dstIdx];
      out.inFlightS = inFlight[dstIdx];
      out.waitingS = out.totalDelayS() - out.inFlightS;
      out.hops = hops[dstIdx];
      out.intervalsUsed = intervals;
      return out;
    }
  }
  return out;  // not reachable within the horizon
}

}  // namespace openspace
