#include <openspace/routing/temporal.hpp>

#include <queue>

#include <openspace/geo/error.hpp>

namespace openspace {

ContactGraphRouter::ContactGraphRouter(const TopologyBuilder& builder,
                                       const SnapshotOptions& opt, double t0S,
                                       double horizonS, double stepS) {
  if (stepS <= 0.0 || horizonS <= 0.0) {
    throw InvalidArgumentError("ContactGraphRouter: step/horizon must be > 0");
  }
  for (double t = t0S; t < t0S + horizonS; t += stepS) {
    snaps_.push_back({t, std::min(t + stepS, t0S + horizonS),
                      builder.snapshot(t, opt)});
  }
  gridEndS_ = t0S + horizonS;
}

TemporalRoute ContactGraphRouter::earliestArrival(NodeId src, NodeId dst,
                                                  double tStartS) const {
  if (snaps_.empty()) throw StateError("ContactGraphRouter: no snapshots");
  if (!snaps_.front().graph.hasNode(src) || !snaps_.front().graph.hasNode(dst)) {
    throw NotFoundError("earliestArrival: unknown node");
  }

  TemporalRoute out;
  out.departureS = tStartS;

  struct Label {
    double arrival = std::numeric_limits<double>::infinity();
    double inFlight = 0.0;
    int hops = 0;
  };
  std::unordered_map<NodeId, Label> labels;
  labels[src] = {tStartS, 0.0, 0};

  int intervals = 0;
  for (const Interval& iv : snaps_) {
    if (iv.endS < tStartS) continue;  // before the message exists
    ++intervals;

    // Multi-source Dijkstra within this interval: a node participates once
    // its stored message is present (arrival <= iv.endS); transmission can
    // start no earlier than max(arrival, iv.startS).
    using QE = std::pair<double, NodeId>;
    std::priority_queue<QE, std::vector<QE>, std::greater<>> pq;
    for (const auto& [node, lbl] : labels) {
      if (lbl.arrival <= iv.endS && iv.graph.hasNode(node)) {
        pq.emplace(std::max(lbl.arrival, iv.startS), node);
      }
    }
    while (!pq.empty()) {
      const auto [t, u] = pq.top();
      pq.pop();
      const auto itU = labels.find(u);
      if (itU == labels.end() || std::max(itU->second.arrival, iv.startS) < t) {
        continue;  // stale entry
      }
      if (t > iv.endS) continue;
      for (const LinkId lid : iv.graph.linksOf(u)) {
        const Link& l = iv.graph.link(lid);
        const NodeId v = l.otherEnd(u);
        const double arrive = t + l.totalDelayS();
        if (arrive > iv.endS) continue;  // contact closes mid-flight
        auto& lv = labels[v];
        if (arrive < lv.arrival) {
          lv.arrival = arrive;
          lv.inFlight = itU->second.inFlight + l.totalDelayS();
          lv.hops = itU->second.hops + 1;
          pq.emplace(arrive, v);
        }
      }
    }

    const auto itDst = labels.find(dst);
    if (itDst != labels.end() &&
        itDst->second.arrival <= iv.endS) {
      out.reachable = true;
      out.arrivalS = itDst->second.arrival;
      out.inFlightS = itDst->second.inFlight;
      out.waitingS = out.totalDelayS() - out.inFlightS;
      out.hops = itDst->second.hops;
      out.intervalsUsed = intervals;
      return out;
    }
  }
  return out;  // not reachable within the horizon
}

}  // namespace openspace
