#include <openspace/routing/ondemand.hpp>

#include <openspace/geo/error.hpp>

namespace openspace {

OnDemandRouter::OnDemandRouter(const NetworkGraph& graph, LinkCostFn cost,
                               ProviderId home)
    : graph_(graph), cost_(std::move(cost)), home_(home) {}

Route OnDemandRouter::route(NodeId src, NodeId dst) const {
  return shortestPath(graph_, src, dst, cost_, home_);
}

std::vector<Route> OnDemandRouter::alternatives(NodeId src, NodeId dst,
                                                int k) const {
  return kShortestPaths(graph_, src, dst, k, cost_, home_);
}

Route OnDemandRouter::selectGroundStation(NodeId src) const {
  const auto tree = shortestPathTree(graph_, src, cost_, home_);
  Route best;
  for (const NodeId gs : graph_.nodesOfKind(NodeKind::GroundStation)) {
    const auto it = tree.find(gs);
    if (it != tree.end() && it->second.valid() && it->second.cost < best.cost) {
      best = it->second;
    }
  }
  return best;
}

double estimateQueueingDelayS(double utilization, double capacityBps,
                              double mtuBits, double maxDelayS) {
  if (capacityBps <= 0.0 || mtuBits <= 0.0) {
    throw InvalidArgumentError("estimateQueueingDelayS: non-positive inputs");
  }
  if (utilization < 0.0) {
    throw InvalidArgumentError("estimateQueueingDelayS: negative utilization");
  }
  const double serviceS = mtuBits / capacityBps;
  if (utilization >= 1.0) return maxDelayS;
  const double d = serviceS * utilization / (1.0 - utilization);
  return std::min(d, maxDelayS);
}

}  // namespace openspace
