// Proactive (ephemeris-precomputed) routing.
//
// §2.2: "the topology of the satellite network is both known and public,
// allowing for pre-computation of static routes between any set of
// satellites and fixed ground infrastructure." ProactiveRouter snapshots
// the predicted topology on a fixed time grid ahead of time; at service
// time a route lookup is a cached tree walk, with no on-line discovery.
//
// Each grid snapshot is compiled once into a CSR RouteEngine; per-source
// results are cached as compact PathTrees (two flat arrays each) and
// destinations expand to full Routes on demand, so warming a source costs
// one arena-backed Dijkstra and a lookup never re-walks the hash-map graph.
#pragma once

#include <map>

#include <openspace/routing/engine.hpp>
#include <openspace/topology/builder.hpp>

namespace openspace {

class ProactiveRouter {
 public:
  /// Precompute snapshots of `builder` on the grid {t0S, t0S+step, ...} over
  /// [t0S, t0S+horizon]. Throws InvalidArgumentError for non-positive
  /// step/horizon.
  ProactiveRouter(const TopologyBuilder& builder, const SnapshotOptions& opt,
                  double t0S, double horizonS, double stepS,
                  LinkCostFn cost = latencyCost(), ProviderId home = {});

  /// Route valid at time t (uses the latest snapshot at or before t;
  /// t before the grid uses the first snapshot). Source trees are cached.
  /// Returns an invalid route when the destination is unreachable in that
  /// snapshot. Throws NotFoundError for unknown nodes.
  Route route(NodeId src, NodeId dst, double tSeconds) const;

  /// Warm the per-source tree caches for `sources` across every grid
  /// snapshot, fanning the Dijkstra runs over the process thread pool
  /// (RouteEngine::batchShortestPathTrees). Subsequent route() calls for
  /// these sources are pure cache hits. Throws NotFoundError if any source
  /// is unknown; already-cached sources are recomputed (results identical).
  void precomputeTrees(const std::vector<NodeId>& sources);

  /// The topology snapshot covering time t.
  const NetworkGraph& snapshotAt(double tSeconds) const;

  /// Grid times, ascending.
  std::vector<double> gridTimes() const;

  std::size_t snapshotCount() const noexcept { return snaps_.size(); }

 private:
  struct Snap {
    NetworkGraph graph;
    RouteEngine engine;  ///< Compiled once from `graph` at construction.
    // Lazily filled per-source shortest path trees (compact form).
    mutable std::map<NodeId, PathTree> trees;
  };

  const Snap& snapFor(double tSeconds) const;

  std::map<double, Snap> snaps_;
  LinkCostFn cost_;
  ProviderId home_;
};

}  // namespace openspace
