// Route representation and QoS-aware link cost model.
#pragma once

#include <functional>
#include <limits>
#include <vector>

#include <openspace/topology/graph.hpp>

namespace openspace {

/// A computed path through a topology snapshot.
struct Route {
  std::vector<NodeId> nodes;  ///< src ... dst (size >= 1).
  std::vector<LinkId> links;  ///< size == nodes.size() - 1.
  double cost = std::numeric_limits<double>::infinity();
  double propagationDelayS = 0.0;
  double queueingDelayS = 0.0;
  double bottleneckBps = std::numeric_limits<double>::infinity();
  int hops() const noexcept { return static_cast<int>(links.size()); }
  bool valid() const noexcept { return !nodes.empty(); }
  double totalDelayS() const noexcept { return propagationDelayS + queueingDelayS; }
};

/// QoS classes users subscribe to (§2.2: providers adjust advertised plans
/// to the QoS their assets can guarantee).
enum class QosClass { Bulk, Standard, Premium };

/// Weights combining link properties into a scalar routing cost.
/// cost(link) = latencyWeight * delay
///            + bandwidthWeight / capacity
///            + tariffWeight * tariff
///            + hopPenalty
///            + foreignPenalty (if the carrying satellite is not home)
struct CostWeights {
  double latencyWeight = 1.0;       ///< Per second of one-way delay.
  double bandwidthWeight = 0.0;     ///< Per 1/bps — penalizes thin links.
  double tariffWeight = 0.0;        ///< Per USD/GB of transit tariff.
  double hopPenalty = 0.0;          ///< Flat per-hop cost.
  double foreignPenalty = 0.0;      ///< Per hop on another provider's asset.
  bool requireLaserForPremium = false;

  /// Standard weight presets per QoS class.
  static CostWeights forQos(QosClass q);
};

/// Link cost functor signature: (graph, link, homeProvider) -> cost.
/// Must be positive for every traversable link; return +inf to forbid.
using LinkCostFn =
    std::function<double(const NetworkGraph&, const Link&, ProviderId)>;

/// The heterogeneity-aware default cost model described in §2.2: combines
/// propagation + queueing delay, available bandwidth, transit tariffs and
/// ownership. Premium flows may refuse RF-only ISLs (laser-guaranteed QoS).
LinkCostFn makeCostFunction(const CostWeights& weights);

/// Pure-latency cost (the paper's §4 "use this path length to estimate
/// latency" evaluation model).
LinkCostFn latencyCost();

}  // namespace openspace
