// RouteEngine: compiled-snapshot routing with reusable scratch arenas.
//
// The legacy entry points in dijkstra.hpp walk the hash-map NetworkGraph
// through a std::function cost callback per edge and allocate fresh map/set
// state per query. RouteEngine is the production path: it compiles the
// snapshot once into an immutable CSR adjacency (topology/compact_graph.hpp)
// with per-edge precomputed cost/delay/capacity, then answers any number of
// queries over generation-stamped scratch arrays and a reusable d-ary heap —
// zero allocation per query once warmed up, no std::function or hash lookup
// in the hot loop.
//
// Determinism contract: every query is a pure function of the compiled
// graph. The heap breaks distance ties by dense node index (== NetworkGraph
// insertion order), so equal-cost route choices are stable run-to-run, and
// batchShortestPathTrees() writes each source's tree into its own result
// slot — results are bit-identical at any thread count, including serial.
//
// Thread-safety: the engine itself is immutable after construction, but the
// single-query methods share one internal scratch arena and must not be
// called concurrently on one engine. batchShortestPathTrees() is the
// parallel API: it fans sources over the process thread pool with per-chunk
// arenas. Distinct engines are always independent.
#pragma once

#include <memory>

#include <openspace/core/scratch.hpp>
#include <openspace/routing/route.hpp>
#include <openspace/topology/compact_graph.hpp>

namespace openspace {

/// Reusable single-source search state: O(1) logical reset via generation
/// stamps, storage retained across queries. One arena per running search;
/// never share one arena between concurrent searches.
struct RouteScratch {
  StampedArray<double> dist;
  /// Parent edge per dense node; meaningful only where `dist` is touched
  /// this generation (shares its stamps instead of keeping a second set).
  std::vector<std::uint32_t> parentEdge;
  DaryHeap frontier;
  /// Path-extraction staging (edge indices in forward order), kept here so
  /// steady-state extraction reuses its capacity.
  std::vector<std::uint32_t> pathEdges;
};

/// The flat result of one single-source shortest-path run: distances and
/// parent edges by dense node index, plus enough shared context to expand
/// any destination into a full Route on demand. Cheap to keep around (two
/// flat arrays), so proactive routing stores PathTrees instead of
/// materialized per-destination Route maps.
class PathTree {
 public:
  PathTree() = default;

  /// False for a default-constructed (empty) tree.
  bool valid() const noexcept { return csr_ != nullptr; }
  NodeId source() const noexcept { return source_; }

  /// True when `dst` was reached. Throws NotFoundError for unknown nodes.
  bool reaches(NodeId dst) const;
  /// Path cost to `dst` (+inf when unreachable). Throws NotFoundError.
  double costTo(NodeId dst) const;
  /// Full route to `dst`; invalid Route when unreachable. Throws
  /// NotFoundError for nodes absent from the snapshot.
  Route routeTo(NodeId dst) const;
  /// Legacy-shaped materialization: every reachable node -> Route.
  std::unordered_map<NodeId, Route> allRoutes() const;

  /// Flat views by dense node index (for checksums / bulk consumers).
  const std::vector<double>& distByIndex() const noexcept { return dist_; }
  const std::vector<std::uint32_t>& parentEdgeByIndex() const noexcept {
    return parentEdge_;
  }

 private:
  friend class RouteEngine;

  std::shared_ptr<const CompactGraph> csr_;
  NodeId source_{};
  std::uint32_t sourceIndex_ = CompactGraph::kInvalidIndex;
  std::vector<double> dist_;               ///< +inf == unreachable.
  std::vector<std::uint32_t> parentEdge_;  ///< kInvalidIndex == none.
};

/// Observability of one repairShortestPathTree() call: whether the repair
/// path ran (vs falling back to a fresh Dijkstra) and how much of the graph
/// it actually touched.
struct TreeRepairStats {
  bool repaired = false;  ///< False => fell back to a fresh full run.
  /// Static string naming the fallback cause; nullptr when repaired.
  const char* fallbackReason = nullptr;
  std::size_t changedEdges = 0;  ///< Directed edges whose cost bits changed.
  std::size_t addedEdges = 0;    ///< Directed edges present only in the new graph.
  std::size_t removedEdges = 0;  ///< Directed edges present only in the old graph.
  std::size_t seedNodes = 0;     ///< Nodes whose incoming edge set changed.
  std::size_t queuePops = 0;     ///< Repair-queue activity (~ affected region).
  std::size_t parentRecomputes = 0;  ///< Nodes whose parent edge was re-derived.
};

class RouteEngine {
 public:
  /// Compile `g` under `cost` as provider `home`. The NetworkGraph is not
  /// retained: the engine owns its compiled form and is self-contained.
  explicit RouteEngine(const NetworkGraph& g, const LinkCostFn& cost = latencyCost(),
                       ProviderId home = {});
  /// Adopt an already-compiled graph (shared with PathTrees it produces).
  explicit RouteEngine(std::shared_ptr<const CompactGraph> graph);

  /// Dijkstra with early exit at `dst`. Same contract as the legacy free
  /// function: trivial route for src == dst, invalid Route when
  /// unreachable, NotFoundError for unknown endpoints.
  Route shortestPath(NodeId src, NodeId dst) const;

  /// Full single-source tree as a compact PathTree.
  PathTree shortestPathTree(NodeId src) const;

  /// Repair `previous` (a tree computed against an earlier compiled graph
  /// with the same node template — typically the prior step of an
  /// IncrementalTopology sweep) into a tree over THIS engine's graph.
  ///
  /// Result contract: bit-identical to shortestPathTree(previous.source())
  /// — same dist and parentEdge arrays to the last bit, property-tested
  /// against the fresh path. Only the delta-affected frontier is
  /// re-settled (Ramalingam–Reps style dist repair seeded by the edge
  /// diff), so cost: O(diff + affected region), not O(N log N + E).
  ///
  /// Falls back to a fresh run — never fails, never slower than ~2x fresh
  /// — when the repair preconditions do not hold: node template changed,
  /// any new-graph edge has non-positive cost or a missing reverse
  /// direction, or the diff floods the frontier (`stats->fallbackReason`
  /// says which). Throws InvalidArgumentError for an invalid `previous`.
  PathTree repairShortestPathTree(const PathTree& previous,
                                  TreeRepairStats* stats = nullptr) const;

  /// One PathTree per source, computed across the process thread pool
  /// (openspace::parallelFor). Output order matches `sources`; results are
  /// bit-identical to computing each tree serially. Throws NotFoundError
  /// if any source is unknown (before any work is fanned out).
  std::vector<PathTree> batchShortestPathTrees(
      const std::vector<NodeId>& sources) const;

  /// Yen's algorithm over the compiled graph: up to k loop-free shortest
  /// paths in ascending cost. Candidate deduplication uses a hashed
  /// node-sequence set and root-prefix costs are reused from the compiled
  /// per-edge costs (never re-priced). Throws InvalidArgumentError for
  /// k < 1, NotFoundError for unknown endpoints.
  std::vector<Route> kShortestPaths(NodeId src, NodeId dst, int k) const;

  const CompactGraph& graph() const noexcept { return *csr_; }
  std::shared_ptr<const CompactGraph> sharedGraph() const noexcept {
    return csr_;
  }

 private:
  std::uint32_t requireIndex(NodeId id, const char* what) const;
  /// Core Dijkstra over `scratch`; masks (may be null) mark forbidden
  /// dense nodes / edge indices as "touched".
  void runDijkstra(std::uint32_t srcIndex, std::uint32_t stopAtIndex,
                   RouteScratch& scratch, const StampedArray<char>* nodeMask,
                   const StampedArray<char>* edgeMask) const;
  Route extractFromScratch(std::uint32_t srcIndex, std::uint32_t dstIndex,
                           RouteScratch& scratch) const;
  PathTree treeFrom(std::uint32_t srcIndex, RouteScratch& scratch) const;

  std::shared_ptr<const CompactGraph> csr_;
  /// Query-reuse arenas (see thread-safety note above).
  mutable RouteScratch scratch_;
  mutable StampedArray<char> forbiddenNodes_;
  mutable StampedArray<char> forbiddenEdges_;
  /// repairShortestPathTree() arenas: edge-diff row matching, seed/suspect
  /// marks, and the dist-repair queue. Same sharing rule as scratch_.
  ///
  /// The edge diff (preconditions, per-row matching, seeds, old->new
  /// remap) is a pure function of the (previous, current) graph pair —
  /// independent of the tree's source — so a temporal sweep repairing one
  /// tree per source across the same pair computes it once: `cachedPrev`
  /// keys the cache and pins the old graph so the address cannot be
  /// recycled while cached.
  struct RepairScratch {
    StampedArray<std::uint32_t> rowTarget;  ///< target -> new edge, per row.
    StampedArray<char> claimed;             ///< new edges matched this call.
    StampedArray<char> seedMark;
    StampedArray<char> suspectMark;
    DaryHeap queue;
    // Cached diff of (cachedPrev -> engine graph); valid while cachedPrev
    // matches the previous tree's graph.
    std::shared_ptr<const CompactGraph> cachedPrev;
    /// Non-null: the cached pair falls back to a fresh run for this reason.
    const char* cachedFallback = nullptr;
    TreeRepairStats diffStats;  ///< changed/added/removed edges, seed count.
    std::vector<std::uint32_t> oldToNew;  ///< old edge -> new edge (kInvalid).
    std::vector<std::uint32_t> seeds;
    /// Parallel-link targets: pre-suspect nodes replayed into suspectMark
    /// on every (cached) call.
    std::vector<std::uint32_t> diffSuspects;
  };
  mutable RepairScratch repair_;
};

}  // namespace openspace
