// RouteEngine: compiled-snapshot routing with reusable scratch arenas.
//
// The legacy entry points in dijkstra.hpp walk the hash-map NetworkGraph
// through a std::function cost callback per edge and allocate fresh map/set
// state per query. RouteEngine is the production path: it compiles the
// snapshot once into an immutable CSR adjacency (topology/compact_graph.hpp)
// with per-edge precomputed cost/delay/capacity, then answers any number of
// queries over generation-stamped scratch arrays and a reusable d-ary heap —
// zero allocation per query once warmed up, no std::function or hash lookup
// in the hot loop.
//
// Determinism contract: every query is a pure function of the compiled
// graph. The heap breaks distance ties by dense node index (== NetworkGraph
// insertion order), so equal-cost route choices are stable run-to-run, and
// batchShortestPathTrees() writes each source's tree into its own result
// slot — results are bit-identical at any thread count, including serial.
//
// Thread-safety: the engine itself is immutable after construction, but the
// single-query methods share one internal scratch arena and must not be
// called concurrently on one engine. batchShortestPathTrees() is the
// parallel API: it fans sources over the process thread pool with per-chunk
// arenas. Distinct engines are always independent.
#pragma once

#include <memory>

#include <openspace/core/scratch.hpp>
#include <openspace/routing/route.hpp>
#include <openspace/topology/compact_graph.hpp>

namespace openspace {

/// Reusable single-source search state: O(1) logical reset via generation
/// stamps, storage retained across queries. One arena per running search;
/// never share one arena between concurrent searches.
struct RouteScratch {
  StampedArray<double> dist;
  /// Parent edge per dense node; meaningful only where `dist` is touched
  /// this generation (shares its stamps instead of keeping a second set).
  std::vector<std::uint32_t> parentEdge;
  DaryHeap frontier;
  /// Path-extraction staging (edge indices in forward order), kept here so
  /// steady-state extraction reuses its capacity.
  std::vector<std::uint32_t> pathEdges;
};

/// The flat result of one single-source shortest-path run: distances and
/// parent edges by dense node index, plus enough shared context to expand
/// any destination into a full Route on demand. Cheap to keep around (two
/// flat arrays), so proactive routing stores PathTrees instead of
/// materialized per-destination Route maps.
class PathTree {
 public:
  PathTree() = default;

  /// False for a default-constructed (empty) tree.
  bool valid() const noexcept { return csr_ != nullptr; }
  NodeId source() const noexcept { return source_; }

  /// True when `dst` was reached. Throws NotFoundError for unknown nodes.
  bool reaches(NodeId dst) const;
  /// Path cost to `dst` (+inf when unreachable). Throws NotFoundError.
  double costTo(NodeId dst) const;
  /// Full route to `dst`; invalid Route when unreachable. Throws
  /// NotFoundError for nodes absent from the snapshot.
  Route routeTo(NodeId dst) const;
  /// Legacy-shaped materialization: every reachable node -> Route.
  std::unordered_map<NodeId, Route> allRoutes() const;

  /// Flat views by dense node index (for checksums / bulk consumers).
  const std::vector<double>& distByIndex() const noexcept { return dist_; }
  const std::vector<std::uint32_t>& parentEdgeByIndex() const noexcept {
    return parentEdge_;
  }

 private:
  friend class RouteEngine;

  std::shared_ptr<const CompactGraph> csr_;
  NodeId source_{};
  std::uint32_t sourceIndex_ = CompactGraph::kInvalidIndex;
  std::vector<double> dist_;               ///< +inf == unreachable.
  std::vector<std::uint32_t> parentEdge_;  ///< kInvalidIndex == none.
};

class RouteEngine {
 public:
  /// Compile `g` under `cost` as provider `home`. The NetworkGraph is not
  /// retained: the engine owns its compiled form and is self-contained.
  explicit RouteEngine(const NetworkGraph& g, const LinkCostFn& cost = latencyCost(),
                       ProviderId home = {});
  /// Adopt an already-compiled graph (shared with PathTrees it produces).
  explicit RouteEngine(std::shared_ptr<const CompactGraph> graph);

  /// Dijkstra with early exit at `dst`. Same contract as the legacy free
  /// function: trivial route for src == dst, invalid Route when
  /// unreachable, NotFoundError for unknown endpoints.
  Route shortestPath(NodeId src, NodeId dst) const;

  /// Full single-source tree as a compact PathTree.
  PathTree shortestPathTree(NodeId src) const;

  /// One PathTree per source, computed across the process thread pool
  /// (openspace::parallelFor). Output order matches `sources`; results are
  /// bit-identical to computing each tree serially. Throws NotFoundError
  /// if any source is unknown (before any work is fanned out).
  std::vector<PathTree> batchShortestPathTrees(
      const std::vector<NodeId>& sources) const;

  /// Yen's algorithm over the compiled graph: up to k loop-free shortest
  /// paths in ascending cost. Candidate deduplication uses a hashed
  /// node-sequence set and root-prefix costs are reused from the compiled
  /// per-edge costs (never re-priced). Throws InvalidArgumentError for
  /// k < 1, NotFoundError for unknown endpoints.
  std::vector<Route> kShortestPaths(NodeId src, NodeId dst, int k) const;

  const CompactGraph& graph() const noexcept { return *csr_; }
  std::shared_ptr<const CompactGraph> sharedGraph() const noexcept {
    return csr_;
  }

 private:
  std::uint32_t requireIndex(NodeId id, const char* what) const;
  /// Core Dijkstra over `scratch`; masks (may be null) mark forbidden
  /// dense nodes / edge indices as "touched".
  void runDijkstra(std::uint32_t srcIndex, std::uint32_t stopAtIndex,
                   RouteScratch& scratch, const StampedArray<char>* nodeMask,
                   const StampedArray<char>* edgeMask) const;
  Route extractFromScratch(std::uint32_t srcIndex, std::uint32_t dstIndex,
                           RouteScratch& scratch) const;
  PathTree treeFrom(std::uint32_t srcIndex, RouteScratch& scratch) const;

  std::shared_ptr<const CompactGraph> csr_;
  /// Query-reuse arenas (see thread-safety note above).
  mutable RouteScratch scratch_;
  mutable StampedArray<char> forbiddenNodes_;
  mutable StampedArray<char> forbiddenEdges_;
};

}  // namespace openspace
