// Shortest-path computation over topology snapshots.
//
// These free functions are one-shot conveniences: each call compiles the
// snapshot into a CSR RouteEngine (engine.hpp) and queries it. Callers that
// issue repeated queries against the same snapshot — sweeps, routers,
// benches — should construct a RouteEngine once and amortize compilation;
// the legacy hash-map reference implementations live in legacy.hpp.
#pragma once

#include <openspace/routing/route.hpp>

namespace openspace {

/// Dijkstra shortest path from `src` to `dst` under `cost` as provider
/// `home`. Returns an invalid Route (valid() == false) when unreachable.
/// Throws NotFoundError for unknown endpoints.
Route shortestPath(const NetworkGraph& g, NodeId src, NodeId dst,
                   const LinkCostFn& cost, ProviderId home = {});

/// Single-source Dijkstra: routes from `src` to every reachable node.
/// Unreachable nodes are absent from the result.
std::unordered_map<NodeId, Route> shortestPathTree(const NetworkGraph& g,
                                                   NodeId src,
                                                   const LinkCostFn& cost,
                                                   ProviderId home = {});

/// Yen's algorithm: up to k loop-free shortest paths in ascending cost.
/// Returns fewer when the graph has fewer distinct paths. Throws
/// InvalidArgumentError for k < 1.
std::vector<Route> kShortestPaths(const NetworkGraph& g, NodeId src, NodeId dst,
                                  int k, const LinkCostFn& cost,
                                  ProviderId home = {});

}  // namespace openspace
