// Link-state dissemination over ISLs.
//
// §2.2's end-to-end routing needs live network state ("the cost of a path
// cannot be fully predicted since ISL congestion cannot be anticipated") —
// which means congestion/link state must physically propagate through the
// constellation before routers can use it. This module implements
// sequence-numbered LSA flooding and measures how fast state spreads: the
// staleness floor under which any congestion-aware routing scheme operates.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include <openspace/topology/graph.hpp>

namespace openspace {

/// A link-state advertisement: one node's view of its attached links.
struct Lsa {
  NodeId origin{};
  std::uint64_t sequence = 0;
  double originatedAtS = 0.0;
  /// (neighbor, total link delay seconds) pairs.
  std::vector<std::pair<NodeId, double>> adjacencies;
};

/// Per-node link-state database with freshness filtering.
class LinkStateDb {
 public:
  /// Install an LSA if it is newer (higher sequence) than what is stored
  /// for its origin. Returns true when installed (=> re-flood).
  bool install(const Lsa& lsa);

  /// Stored LSA for `origin`, nullptr if none.
  const Lsa* lookup(NodeId origin) const;

  std::size_t size() const noexcept { return db_.size(); }

  /// Age of the oldest stored LSA relative to `nowS` (staleness bound).
  double oldestAgeS(double nowS) const;

 private:
  std::map<NodeId, Lsa> db_;
};

/// Result of flooding one LSA through a topology snapshot.
struct FloodReport {
  int nodesReached = 0;          ///< Nodes (incl. origin) holding the LSA.
  int messagesSent = 0;          ///< Transmissions on links.
  double convergenceTimeS = 0.0; ///< Origin emission -> last node install.
  double meanArrivalS = 0.0;     ///< Mean install time across nodes.
};

/// Simulate flooding of `origin`'s LSA over the satellite subgraph of `g`
/// (floods ride ISLs; ground nodes do not relay). Each node re-floods on
/// first receipt to all ISL neighbors except the one it heard from;
/// per-hop cost = link propagation delay + `processingS`. Throws
/// NotFoundError for an unknown origin, InvalidArgumentError for negative
/// processing time.
FloodReport simulateLsaFlood(const NetworkGraph& g, NodeId origin,
                             double processingS = 2e-3);

/// Mean time for an LSA from `origin` to reach every satellite, i.e. the
/// minimum staleness of origin-state anywhere in the constellation.
/// Convenience wrapper returning convergenceTimeS.
double stateDisseminationTimeS(const NetworkGraph& g, NodeId origin,
                               double processingS = 2e-3);

}  // namespace openspace
