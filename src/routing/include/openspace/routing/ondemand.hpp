// On-demand, congestion-aware routing.
//
// §2.2: once the system scales, "the cost of a path cannot be fully
// predicted since ISL congestion cannot be anticipated, and even ground
// station conditions may affect the cost or QoS guarantees of a link" —
// e.g. a busy ground station placing surge tariffs on visitor traffic.
// OnDemandRouter reads the *live* link state (queueing delays, tariffs)
// at request time instead of a precomputed table, trading lookup cost for
// adaptivity. §5(2)'s ground-station offload question is answered by
// selectGroundStation(): route to a farther but idle gateway when the
// detour beats the queueing.
#pragma once

#include <openspace/routing/dijkstra.hpp>

namespace openspace {

class OnDemandRouter {
 public:
  /// The graph reference must stay alive and reflects live conditions.
  explicit OnDemandRouter(const NetworkGraph& graph,
                          LinkCostFn cost = latencyCost(), ProviderId home = {});

  /// Route under current congestion/tariff state.
  Route route(NodeId src, NodeId dst) const;

  /// Up to k alternative routes (for multipath / fast failover).
  std::vector<Route> alternatives(NodeId src, NodeId dst, int k) const;

  /// Choose the best ground station for traffic originating at `src`:
  /// evaluates the full path cost to every ground-station node (including
  /// each station's current queueing delay) and returns the route to the
  /// winner. Invalid route if no station is reachable.
  Route selectGroundStation(NodeId src) const;

 private:
  const NetworkGraph& graph_;
  LinkCostFn cost_;
  ProviderId home_;
};

/// Apply an M/M/1-style queueing delay estimate to a link given its
/// current utilization in [0, 1): delay = serviceTime * rho / (1 - rho),
/// with serviceTime approximated by one MTU at link capacity. Utilization
/// >= 1 saturates to `maxDelayS`. Used by the simulator to refresh live
/// queueing state from traffic counters.
double estimateQueueingDelayS(double utilization, double capacityBps,
                              double mtuBits = 12'000.0,
                              double maxDelayS = 2.0);

}  // namespace openspace
