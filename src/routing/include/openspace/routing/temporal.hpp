// Time-expanded (contact-graph) routing.
//
// The paper's §4 shows sparse early deployments: with few satellites there
// is often *no contemporaneous path* between a user and a gateway — but
// because the topology's evolution is publicly predictable, a message can
// still be delivered by store-carry-forward: a satellite holds the data
// while it orbits and forwards when the next contact opens (the DTN
// pattern; the backbone of the "incremental deployment" story, since a
// half-built OpenSpace is a delay-tolerant network before it is a
// real-time one).
//
// ContactGraphRouter computes earliest-arrival delivery over the predicted
// snapshot sequence: within a snapshot interval packets move at link speed;
// across intervals they may wait on any node. Each interval's snapshot is
// compiled once into a CSR CompactGraph (edge weight = total link delay),
// so a query runs label-correcting Dijkstra over flat arrays indexed by
// dense node id — no hash-map graph walk per interval.
#pragma once

#include <memory>

#include <openspace/topology/builder.hpp>
#include <openspace/topology/compact_graph.hpp>
#include <openspace/topology/delta.hpp>

namespace openspace {

/// Result of an earliest-arrival query.
struct TemporalRoute {
  bool reachable = false;
  double departureS = 0.0;
  double arrivalS = 0.0;
  double inFlightS = 0.0;  ///< Cumulative link (propagation) time.
  double waitingS = 0.0;   ///< Time stored on nodes awaiting contacts.
  int hops = 0;            ///< Links traversed across all intervals.
  int intervalsUsed = 0;   ///< Snapshot intervals touched (>= 1 if reachable).

  double totalDelayS() const noexcept { return arrivalS - departureS; }
};

/// Earliest-arrival router over a precomputed snapshot grid.
class ContactGraphRouter {
 public:
  /// Precomputes snapshots on {t0S, t0S+step, ...} covering [t0S, t0S+horizon].
  /// Throws InvalidArgumentError for non-positive step/horizon.
  ///
  /// `build` selects how per-interval graphs are produced. Delta (default)
  /// walks one IncrementalTopology through the grid — satellite positions
  /// come from the shared SnapshotCache (repeated sweeps over one window hit
  /// the LRU) and consecutive graphs are payload-patched instead of
  /// recompiled. FreshCompile is the executable spec: a full
  /// builder.snapshot() + compileGraph() per interval. The two produce
  /// bit-identical graphs (property-tested), so routing results never
  /// depend on the choice.
  ContactGraphRouter(const TopologyBuilder& builder, const SnapshotOptions& opt,
                     double t0S, double horizonS, double stepS,
                     TemporalBuild build = TemporalBuild::Delta);

  /// Earliest arrival of a message from `src` (ready at `tStartS`) to `dst`,
  /// allowing storage at intermediate nodes between snapshot intervals.
  /// Unreachable within the horizon => reachable == false. Throws
  /// NotFoundError for nodes absent from the snapshots.
  TemporalRoute earliestArrival(NodeId src, NodeId dst, double tStartS) const;

  std::size_t snapshotCount() const noexcept { return snaps_.size(); }
  double horizonEndS() const noexcept { return gridEndS_; }

 private:
  struct Interval {
    double startS;
    double endS;
    /// Compiled snapshot; edgeCost() == the link's total delay in seconds.
    /// The dense node numbering is identical across all intervals (verified
    /// at construction), so per-node labels carry over between intervals as
    /// flat arrays without translation.
    std::shared_ptr<const CompactGraph> csr;
  };
  std::vector<Interval> snaps_;
  double gridEndS_ = 0.0;
};

}  // namespace openspace
