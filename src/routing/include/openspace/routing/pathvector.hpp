// Path-vector inter-provider routing (the §3 BGP comparison, executable).
//
// The paper: "The closest example of a heterogeneous distributed
// connectivity model that we can draw from is BGP ... However, applying
// its architecture to OpenSpace is not straightforward, mainly because
// there is a less clear-cut separation between subsystems. ... the notion
// of a 'customer' and a 'provider' in BGP is not translatable to a meshed
// system like OpenSpace."
//
// This module makes that claim testable: a provider-level path-vector
// protocol with two policy modes —
//  * GaoRexford: classic BGP economics (customer routes exported to
//    everyone; peer/provider routes only to customers; route preference
//    customer > peer > provider),
//  * OpenMesh: the OpenSpace model (export everything, prefer shortest
//    provider path) with settlement handled by the §3 ledgers instead of
//    export policy.
// Benchmarks compare reachability and path quality under both.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <vector>

#include <openspace/orbit/ephemeris.hpp>

namespace openspace {

/// Business relationship toward a neighbor, from this provider's view.
enum class Relationship {
  Customer,  ///< They pay us.
  Peer,      ///< Settlement-free exchange.
  Provider,  ///< We pay them.
  Mesh,      ///< OpenSpace: no hierarchy, ledger settlement per byte.
};

std::string_view relationshipName(Relationship r) noexcept;

/// A route advertisement for one destination provider.
struct PathAdvertisement {
  ProviderId destination{};
  /// Provider-level path, destination last; self is prepended on export.
  std::vector<ProviderId> path;

  int pathLength() const noexcept { return static_cast<int>(path.size()); }
  bool containsLoop(ProviderId self) const;
};

/// One provider's path-vector control plane.
class PathVectorNode {
 public:
  explicit PathVectorNode(ProviderId self);

  /// Declare a neighbor and the relationship toward it. Re-declaring
  /// overwrites. Throws InvalidArgumentError for self-neighboring.
  void addNeighbor(ProviderId neighbor, Relationship rel);

  /// Process an advertisement received from `from`. Returns true if the
  /// RIB changed (triggering re-advertisement). Loop-containing paths are
  /// discarded. Throws NotFoundError for unknown neighbors.
  bool receive(ProviderId from, const PathAdvertisement& adv);

  /// Best known route to `destination` (nullopt if none). The self
  /// destination is implicit.
  std::optional<PathAdvertisement> bestRoute(ProviderId destination) const;

  /// Destinations currently reachable (excluding self).
  std::set<ProviderId> reachableDestinations() const;

  /// Advertisements this node exports to `neighbor` under its policy:
  ///  * Mesh relationship: everything (plus self).
  ///  * Gao-Rexford: self + customer-learned routes to anyone;
  ///    peer/provider-learned routes only to customers.
  std::vector<PathAdvertisement> exportTo(ProviderId neighbor) const;

  ProviderId self() const noexcept { return self_; }
  const std::map<ProviderId, Relationship>& neighbors() const noexcept {
    return neighbors_;
  }

 private:
  struct RibEntry {
    PathAdvertisement adv;
    ProviderId learnedFrom{};
    Relationship learnedVia = Relationship::Mesh;
  };
  /// Preference: customer > peer > provider (Gao-Rexford econ), then
  /// shorter path; Mesh neighbors rank with peers.
  static int relRank(Relationship r) noexcept;
  bool better(const RibEntry& a, const RibEntry& b) const;

  ProviderId self_;
  std::map<ProviderId, Relationship> neighbors_;
  std::map<ProviderId, RibEntry> rib_;
};

/// Provider-level adjacency with relationship labels (symmetric pairs must
/// be added consistently by the caller: A customer-of B <=> B provider-of A).
struct ProviderLink {
  ProviderId a{};
  ProviderId b{};
  Relationship aToB = Relationship::Mesh;  ///< a's view of b.
  Relationship bToA = Relationship::Mesh;  ///< b's view of a.
};

/// Result of running the protocol to convergence.
struct ConvergenceReport {
  int rounds = 0;
  int messages = 0;
  bool converged = false;  ///< false = hit the round cap.
  /// reachablePairs / (n * (n-1)).
  double reachability = 0.0;
  double meanPathHops = 0.0;  ///< Over reachable pairs.
};

/// Build nodes from links, run synchronous advertisement rounds until no
/// RIB changes (or `maxRounds`), and report. Nodes are returned through
/// `outNodes` when non-null (for per-pair inspection).
ConvergenceReport runPathVector(const std::vector<ProviderId>& providers,
                                const std::vector<ProviderLink>& links,
                                int maxRounds = 100,
                                std::map<ProviderId, PathVectorNode>* outNodes =
                                    nullptr);

}  // namespace openspace
