// Reference (legacy) routing implementations.
//
// These are the original hash-map Dijkstra / Yen implementations that
// predate the RouteEngine (engine.hpp). They walk the NetworkGraph
// directly, invoking the cost callback lazily per edge, and allocate their
// search state per call. They are retained as the *executable
// specification* the compiled CSR engine is property-tested against
// (tests/test_route_engine.cpp asserts node-for-node, bit-for-bit route
// equality across randomized snapshots) — use the dijkstra.hpp entry
// points (engine-backed) everywhere else.
#pragma once

#include <openspace/routing/route.hpp>

namespace openspace::legacy {

/// Reference Dijkstra shortest path (see shortestPath in dijkstra.hpp for
/// the contract; behavior is identical by construction).
Route shortestPath(const NetworkGraph& g, NodeId src, NodeId dst,
                   const LinkCostFn& cost, ProviderId home = {});

/// Reference single-source tree.
std::unordered_map<NodeId, Route> shortestPathTree(const NetworkGraph& g,
                                                   NodeId src,
                                                   const LinkCostFn& cost,
                                                   ProviderId home = {});

/// Reference Yen k-shortest paths.
std::vector<Route> kShortestPaths(const NetworkGraph& g, NodeId src, NodeId dst,
                                  int k, const LinkCostFn& cost,
                                  ProviderId home = {});

}  // namespace openspace::legacy
