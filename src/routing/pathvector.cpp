#include <openspace/routing/pathvector.hpp>

#include <algorithm>

#include <openspace/geo/error.hpp>

namespace openspace {

std::string_view relationshipName(Relationship r) noexcept {
  switch (r) {
    case Relationship::Customer: return "customer";
    case Relationship::Peer: return "peer";
    case Relationship::Provider: return "provider";
    case Relationship::Mesh: return "mesh";
  }
  return "?";
}

bool PathAdvertisement::containsLoop(ProviderId self) const {
  return std::find(path.begin(), path.end(), self) != path.end();
}

PathVectorNode::PathVectorNode(ProviderId self) : self_(self) {}

void PathVectorNode::addNeighbor(ProviderId neighbor, Relationship rel) {
  if (neighbor == self_) {
    throw InvalidArgumentError("PathVectorNode: cannot neighbor self");
  }
  neighbors_[neighbor] = rel;
}

int PathVectorNode::relRank(Relationship r) noexcept {
  switch (r) {
    case Relationship::Customer: return 0;  // most preferred (they pay us)
    case Relationship::Peer: return 1;
    case Relationship::Mesh: return 1;  // mesh ranks with peers
    case Relationship::Provider: return 2;
  }
  return 3;
}

bool PathVectorNode::better(const RibEntry& a, const RibEntry& b) const {
  const int ra = relRank(a.learnedVia);
  const int rb = relRank(b.learnedVia);
  if (ra != rb) return ra < rb;
  if (a.adv.pathLength() != b.adv.pathLength()) {
    return a.adv.pathLength() < b.adv.pathLength();
  }
  return a.learnedFrom < b.learnedFrom;  // deterministic tie break
}

bool PathVectorNode::receive(ProviderId from, const PathAdvertisement& adv) {
  const auto nb = neighbors_.find(from);
  if (nb == neighbors_.end()) {
    throw NotFoundError("PathVectorNode::receive: unknown neighbor");
  }
  if (adv.destination == self_) return false;  // we are the destination
  if (adv.containsLoop(self_)) return false;   // path-vector loop prevention

  RibEntry candidate;
  candidate.adv = adv;
  candidate.learnedFrom = from;
  candidate.learnedVia = nb->second;

  const auto it = rib_.find(adv.destination);
  if (it == rib_.end() || better(candidate, it->second)) {
    rib_[adv.destination] = std::move(candidate);
    return true;
  }
  return false;
}

std::optional<PathAdvertisement> PathVectorNode::bestRoute(
    ProviderId destination) const {
  const auto it = rib_.find(destination);
  if (it == rib_.end()) return std::nullopt;
  return it->second.adv;
}

std::set<ProviderId> PathVectorNode::reachableDestinations() const {
  std::set<ProviderId> out;
  for (const auto& [dst, entry] : rib_) out.insert(dst);
  return out;
}

std::vector<PathAdvertisement> PathVectorNode::exportTo(
    ProviderId neighbor) const {
  const auto nb = neighbors_.find(neighbor);
  if (nb == neighbors_.end()) {
    throw NotFoundError("PathVectorNode::exportTo: unknown neighbor");
  }
  const Relationship toNeighbor = nb->second;

  std::vector<PathAdvertisement> out;
  // Always advertise self.
  PathAdvertisement selfAdv;
  selfAdv.destination = self_;
  selfAdv.path = {self_};
  out.push_back(std::move(selfAdv));

  for (const auto& [dst, entry] : rib_) {
    if (entry.learnedFrom == neighbor) continue;  // split horizon
    bool exportIt = false;
    if (toNeighbor == Relationship::Mesh) {
      // OpenSpace: everything flows; accounting handles compensation.
      exportIt = true;
    } else if (toNeighbor == Relationship::Customer) {
      // Customers receive everything (they pay for full reachability).
      exportIt = true;
    } else {
      // To peers and providers: only customer-learned routes (no free
      // transit) — the Gao-Rexford export rule.
      exportIt = (entry.learnedVia == Relationship::Customer);
    }
    if (!exportIt) continue;
    PathAdvertisement adv = entry.adv;
    adv.path.insert(adv.path.begin(), self_);
    out.push_back(std::move(adv));
  }
  return out;
}

ConvergenceReport runPathVector(const std::vector<ProviderId>& providers,
                                const std::vector<ProviderLink>& links,
                                int maxRounds,
                                std::map<ProviderId, PathVectorNode>* outNodes) {
  if (maxRounds < 1) {
    throw InvalidArgumentError("runPathVector: maxRounds must be >= 1");
  }
  std::map<ProviderId, PathVectorNode> nodes;
  for (const ProviderId p : providers) nodes.emplace(p, PathVectorNode(p));
  for (const ProviderLink& l : links) {
    const auto ia = nodes.find(l.a);
    const auto ib = nodes.find(l.b);
    if (ia == nodes.end() || ib == nodes.end()) {
      throw NotFoundError("runPathVector: link references unknown provider");
    }
    ia->second.addNeighbor(l.b, l.aToB);
    ib->second.addNeighbor(l.a, l.bToA);
  }

  ConvergenceReport rep;
  for (rep.rounds = 0; rep.rounds < maxRounds; ++rep.rounds) {
    bool changed = false;
    // Synchronous round: everyone exports against the previous RIBs.
    std::vector<std::tuple<ProviderId, ProviderId, PathAdvertisement>> inbox;
    for (const auto& [p, node] : nodes) {
      for (const auto& [nbr, rel] : node.neighbors()) {
        for (const auto& adv : node.exportTo(nbr)) {
          inbox.emplace_back(nbr, p, adv);
          ++rep.messages;
        }
      }
    }
    for (const auto& [to, from, adv] : inbox) {
      changed |= nodes.at(to).receive(from, adv);
    }
    if (!changed) {
      rep.converged = true;
      ++rep.rounds;
      break;
    }
  }

  // Reachability + path quality.
  const std::size_t n = providers.size();
  if (n > 1) {
    std::size_t reachable = 0;
    double pathSum = 0.0;
    for (const auto& [p, node] : nodes) {
      for (const ProviderId q : providers) {
        if (q == p) continue;
        const auto r = node.bestRoute(q);
        if (r) {
          ++reachable;
          pathSum += r->pathLength();
        }
      }
    }
    rep.reachability =
        static_cast<double>(reachable) / static_cast<double>(n * (n - 1));
    rep.meanPathHops = reachable ? pathSum / static_cast<double>(reachable) : 0.0;
  }
  if (outNodes) *outNodes = std::move(nodes);
  return rep;
}

}  // namespace openspace
