// Public routing entry points (engine-backed adapters) plus the legacy
// reference implementations they are property-tested against.
//
// The free functions below keep their original signatures but now compile
// the snapshot into a CSR RouteEngine and query that; callers with repeated
// queries against one snapshot should construct a RouteEngine directly and
// amortize the compilation.
#include <openspace/routing/dijkstra.hpp>

#include <algorithm>
#include <queue>
#include <set>
#include <unordered_set>

#include <openspace/core/assert.hpp>
#include <openspace/geo/error.hpp>
#include <openspace/routing/engine.hpp>
#include <openspace/routing/legacy.hpp>

namespace openspace {

namespace {

struct QueueEntry {
  double dist;
  NodeId node;
  /// Orders by (dist, node id): the deterministic tie-break mirrors the
  /// RouteEngine's (dist, dense index) heap order, so equal-cost parent
  /// choices agree between the reference and compiled paths.
  bool operator>(const QueueEntry& o) const noexcept {
    return dist > o.dist || (dist == o.dist && node.value() > o.node.value());
  }
};

/// FNV-1a over a node sequence (Yen candidate dedup).
struct NodeSeqHash {
  std::size_t operator()(const std::vector<NodeId>& nodes) const noexcept {
    std::uint64_t h = 0xCBF29CE484222325ull;
    for (const NodeId id : nodes) {
      h ^= id.value();
      h *= 0x100000001B3ull;
    }
    return static_cast<std::size_t>(h);
  }
};

/// Internal Dijkstra with optional forbidden nodes/links (for Yen spurs).
std::unordered_map<NodeId, std::pair<double, LinkId>> dijkstraCore(
    const NetworkGraph& g, NodeId src, const LinkCostFn& cost, ProviderId home,
    const std::set<NodeId>* forbiddenNodes, const std::set<LinkId>* forbiddenLinks,
    std::optional<NodeId> stopAt) {
  OPENSPACE_ASSERT(g.hasNode(src), "public entry points validate endpoints");
  std::unordered_map<NodeId, std::pair<double, LinkId>> best;  // node -> (dist, via)
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> pq;
  best[src] = {0.0, LinkId{}};
  pq.push({0.0, src});
  while (!pq.empty()) {
    const auto [dist, u] = pq.top();
    pq.pop();
    const auto itU = best.find(u);
    if (itU == best.end() || dist > itU->second.first) continue;  // stale
    if (stopAt && u == *stopAt) break;
    for (const LinkId lid : g.linksOf(u)) {
      if (forbiddenLinks && forbiddenLinks->contains(lid)) continue;
      const Link& l = g.link(lid);
      const NodeId v = l.otherEnd(u);
      if (forbiddenNodes && forbiddenNodes->contains(v)) continue;
      const double c = cost(g, l, home);
      if (!(c >= 0.0)) {
        throw InvalidArgumentError("dijkstra: negative or NaN link cost");
      }
      if (std::isinf(c)) continue;
      const double nd = dist + c;
      OPENSPACE_ASSERT(nd >= dist,
                       "non-negative costs keep distances monotone");
      const auto itV = best.find(v);
      if (itV == best.end() || nd < itV->second.first) {
        best[v] = {nd, lid};
        pq.push({nd, v});
      }
    }
  }
  return best;
}

Route extractRoute(const NetworkGraph& g, NodeId src, NodeId dst,
                   const std::unordered_map<NodeId, std::pair<double, LinkId>>& best) {
  Route r;
  const auto itDst = best.find(dst);
  if (itDst == best.end()) return r;  // unreachable -> invalid route
  r.cost = itDst->second.first;
  NodeId cur = dst;
  while (cur != src) {
    const auto itCur = best.find(cur);
    OPENSPACE_ASSERT(itCur != best.end(),
                     "every settled node except src has a predecessor");
    const LinkId via = itCur->second.second;
    r.links.push_back(via);
    r.nodes.push_back(cur);
    cur = g.link(via).otherEnd(cur);
  }
  r.nodes.push_back(src);
  std::reverse(r.nodes.begin(), r.nodes.end());
  std::reverse(r.links.begin(), r.links.end());
  for (const LinkId lid : r.links) {
    const Link& l = g.link(lid);
    r.propagationDelayS += l.propagationDelayS;
    r.queueingDelayS += l.queueingDelayS;
    r.bottleneckBps = std::min(r.bottleneckBps, l.capacityBps);
  }
  return r;
}

}  // namespace

namespace legacy {

Route shortestPath(const NetworkGraph& g, NodeId src, NodeId dst,
                   const LinkCostFn& cost, ProviderId home) {
  if (!g.hasNode(src) || !g.hasNode(dst)) {
    throw NotFoundError("shortestPath: unknown endpoint node");
  }
  if (src == dst) {
    Route r;
    r.nodes = {src};
    r.cost = 0.0;
    r.bottleneckBps = std::numeric_limits<double>::infinity();
    return r;
  }
  const auto best = dijkstraCore(g, src, cost, home, nullptr, nullptr, dst);
  return extractRoute(g, src, dst, best);
}

std::unordered_map<NodeId, Route> shortestPathTree(const NetworkGraph& g,
                                                   NodeId src,
                                                   const LinkCostFn& cost,
                                                   ProviderId home) {
  if (!g.hasNode(src)) throw NotFoundError("shortestPathTree: unknown source");
  const auto best = dijkstraCore(g, src, cost, home, nullptr, nullptr, std::nullopt);
  std::unordered_map<NodeId, Route> out;
  // det-waiver: keyed-map build from the pure function extractRoute(node)
  for (const auto& [node, entry] : best) {
    out.emplace(node, extractRoute(g, src, node, best));
  }
  return out;
}

std::vector<Route> kShortestPaths(const NetworkGraph& g, NodeId src, NodeId dst,
                                  int k, const LinkCostFn& cost, ProviderId home) {
  if (k < 1) throw InvalidArgumentError("kShortestPaths: k must be >= 1");
  std::vector<Route> result;
  const Route first = legacy::shortestPath(g, src, dst, cost, home);
  if (!first.valid()) return result;
  result.push_back(first);

  // Yen's algorithm. Dedup is a hashed node-sequence set over every path
  // ever accepted (result ∪ candidates); the root prefix of each spur route
  // is priced once per outer iteration with running prefix sums instead of
  // re-invoking the cost model per candidate.
  auto routeLess = [](const Route& a, const Route& b) { return a.cost < b.cost; };
  std::unordered_set<std::vector<NodeId>, NodeSeqHash> seen;
  seen.insert(first.nodes);
  std::vector<Route> candidates;
  std::vector<double> prefixCost, prefixPropS, prefixQueueS, prefixBottleneckBps;

  for (int ki = 1; ki < k; ++ki) {
    const Route& prev = result.back();
    prefixCost.assign(1, 0.0);
    prefixPropS.assign(1, 0.0);
    prefixQueueS.assign(1, 0.0);
    prefixBottleneckBps.assign(1, std::numeric_limits<double>::infinity());
    for (const LinkId lid : prev.links) {
      const Link& l = g.link(lid);
      prefixCost.push_back(prefixCost.back() + cost(g, l, home));
      prefixPropS.push_back(prefixPropS.back() + l.propagationDelayS);
      prefixQueueS.push_back(prefixQueueS.back() + l.queueingDelayS);
      prefixBottleneckBps.push_back(
          std::min(prefixBottleneckBps.back(), l.capacityBps));
    }

    for (std::size_t spur = 0; spur + 1 < prev.nodes.size(); ++spur) {
      const NodeId spurNode = prev.nodes[spur];
      // Root path: prev.nodes[0..spur].
      std::set<LinkId> forbiddenLinks;
      for (const Route& r : result) {
        if (r.nodes.size() > spur &&
            std::equal(r.nodes.begin(),
                       r.nodes.begin() + static_cast<std::ptrdiff_t>(spur) + 1,
                       prev.nodes.begin())) {
          if (spur < r.links.size()) forbiddenLinks.insert(r.links[spur]);
        }
      }
      std::set<NodeId> forbiddenNodes(prev.nodes.begin(),
                                      prev.nodes.begin() +
                                          static_cast<std::ptrdiff_t>(spur));

      const auto best = dijkstraCore(g, spurNode, cost, home, &forbiddenNodes,
                                     &forbiddenLinks, dst);
      Route spurRoute = extractRoute(g, spurNode, dst, best);
      if (!spurRoute.valid()) continue;

      // Stitch root + spur; the root prefix is already priced.
      Route total;
      total.nodes.assign(prev.nodes.begin(),
                         prev.nodes.begin() + static_cast<std::ptrdiff_t>(spur));
      total.nodes.insert(total.nodes.end(), spurRoute.nodes.begin(),
                         spurRoute.nodes.end());
      total.links.assign(prev.links.begin(),
                         prev.links.begin() + static_cast<std::ptrdiff_t>(spur));
      total.links.insert(total.links.end(), spurRoute.links.begin(),
                         spurRoute.links.end());
      total.cost = prefixCost[spur] + spurRoute.cost;
      total.propagationDelayS = prefixPropS[spur] + spurRoute.propagationDelayS;
      total.queueingDelayS = prefixQueueS[spur] + spurRoute.queueingDelayS;
      total.bottleneckBps =
          std::min(prefixBottleneckBps[spur], spurRoute.bottleneckBps);

      if (!seen.insert(total.nodes).second) continue;  // already known
      candidates.push_back(std::move(total));
    }
    if (candidates.empty()) break;
    const auto it = std::min_element(candidates.begin(), candidates.end(), routeLess);
    result.push_back(std::move(*it));
    candidates.erase(it);
  }
  return result;
}

}  // namespace legacy

// --- engine-backed adapters --------------------------------------------------

Route shortestPath(const NetworkGraph& g, NodeId src, NodeId dst,
                   const LinkCostFn& cost, ProviderId home) {
  if (!g.hasNode(src) || !g.hasNode(dst)) {
    throw NotFoundError("shortestPath: unknown endpoint node");
  }
  return RouteEngine(g, cost, home).shortestPath(src, dst);
}

std::unordered_map<NodeId, Route> shortestPathTree(const NetworkGraph& g,
                                                   NodeId src,
                                                   const LinkCostFn& cost,
                                                   ProviderId home) {
  if (!g.hasNode(src)) throw NotFoundError("shortestPathTree: unknown source");
  return RouteEngine(g, cost, home).shortestPathTree(src).allRoutes();
}

std::vector<Route> kShortestPaths(const NetworkGraph& g, NodeId src, NodeId dst,
                                  int k, const LinkCostFn& cost, ProviderId home) {
  if (k < 1) throw InvalidArgumentError("kShortestPaths: k must be >= 1");
  if (!g.hasNode(src) || !g.hasNode(dst)) {
    throw NotFoundError("kShortestPaths: unknown endpoint node");
  }
  return RouteEngine(g, cost, home).kShortestPaths(src, dst, k);
}

}  // namespace openspace
