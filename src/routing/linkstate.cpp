#include <openspace/routing/linkstate.hpp>

#include <queue>

#include <openspace/geo/error.hpp>

namespace openspace {

bool LinkStateDb::install(const Lsa& lsa) {
  const auto it = db_.find(lsa.origin);
  if (it != db_.end() && it->second.sequence >= lsa.sequence) return false;
  db_[lsa.origin] = lsa;
  return true;
}

const Lsa* LinkStateDb::lookup(NodeId origin) const {
  const auto it = db_.find(origin);
  return it == db_.end() ? nullptr : &it->second;
}

double LinkStateDb::oldestAgeS(double nowS) const {
  double oldest = 0.0;
  for (const auto& [origin, lsa] : db_) {
    oldest = std::max(oldest, nowS - lsa.originatedAtS);
  }
  return oldest;
}

FloodReport simulateLsaFlood(const NetworkGraph& g, NodeId origin,
                             double processingS) {
  if (!g.hasNode(origin)) throw NotFoundError("simulateLsaFlood: unknown origin");
  if (processingS < 0.0) {
    throw InvalidArgumentError("simulateLsaFlood: negative processing time");
  }

  // Event-driven flood: first receipt triggers re-flood to all other ISL
  // neighbors. Dijkstra-like since per-link delays are positive.
  std::map<NodeId, double> installedAt;
  FloodReport rep;
  using QE = std::pair<double, NodeId>;
  std::priority_queue<QE, std::vector<QE>, std::greater<>> pq;
  pq.emplace(0.0, origin);

  while (!pq.empty()) {
    const auto [t, u] = pq.top();
    pq.pop();
    if (installedAt.contains(u)) continue;  // duplicate receipt: dropped
    installedAt[u] = t;
    for (const LinkId lid : g.linksOf(u)) {
      const Link& l = g.link(lid);
      if (l.type != LinkType::IslRf && l.type != LinkType::IslLaser) continue;
      const NodeId v = l.otherEnd(u);
      if (installedAt.contains(v)) continue;
      ++rep.messagesSent;
      pq.emplace(t + l.totalDelayS() + processingS, v);
    }
  }

  rep.nodesReached = static_cast<int>(installedAt.size());
  double sum = 0.0;
  for (const auto& [node, t] : installedAt) {
    rep.convergenceTimeS = std::max(rep.convergenceTimeS, t);
    sum += t;
  }
  rep.meanArrivalS = installedAt.empty()
                         ? 0.0
                         : sum / static_cast<double>(installedAt.size());
  return rep;
}

double stateDisseminationTimeS(const NetworkGraph& g, NodeId origin,
                               double processingS) {
  return simulateLsaFlood(g, origin, processingS).convergenceTimeS;
}

}  // namespace openspace
