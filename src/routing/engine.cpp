#include <openspace/routing/engine.hpp>

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>

#include <openspace/concurrency/parallel.hpp>
#include <openspace/core/assert.hpp>
#include <openspace/geo/error.hpp>

namespace openspace {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr std::uint32_t kNoEdge = CompactGraph::kInvalidIndex;

/// Sources per batch chunk: amortizes one scratch arena over several tree
/// runs without starving the pool on mid-sized batches. Fixed (independent
/// of thread count) so the fan-out decomposition never varies.
constexpr std::size_t kBatchChunk = 4;

/// FNV-1a over a node sequence, for Yen's hashed candidate dedup set.
struct NodeSeqHash {
  std::size_t operator()(const std::vector<NodeId>& nodes) const noexcept {
    std::uint64_t h = 0xCBF29CE484222325ull;
    for (const NodeId id : nodes) {
      h ^= id.value();
      h *= 0x100000001B3ull;
    }
    return static_cast<std::size_t>(h);
  }
};

/// Aggregate a link's contribution to a Route's QoS fields.
void accumulateEdge(Route& r, const CompactGraph& g, std::uint32_t e) {
  r.propagationDelayS += g.edgePropagationDelayS(e);
  r.queueingDelayS += g.edgeQueueingDelayS(e);
  r.bottleneckBps = std::min(r.bottleneckBps, g.edgeCapacityBps(e));
}

}  // namespace

// --- PathTree ----------------------------------------------------------------

bool PathTree::reaches(NodeId dst) const { return std::isfinite(costTo(dst)); }

double PathTree::costTo(NodeId dst) const {
  OPENSPACE_ASSERT(valid(), "costTo on a default-constructed PathTree");
  const std::uint32_t i = csr_->indexOf(dst);
  if (i == CompactGraph::kInvalidIndex) {
    throw NotFoundError("PathTree::costTo: unknown node");
  }
  return dist_[i];
}

Route PathTree::routeTo(NodeId dst) const {
  OPENSPACE_ASSERT(valid(), "routeTo on a default-constructed PathTree");
  const std::uint32_t dstIndex = csr_->indexOf(dst);
  if (dstIndex == CompactGraph::kInvalidIndex) {
    throw NotFoundError("PathTree::routeTo: unknown node");
  }
  Route r;
  if (std::isinf(dist_[dstIndex])) return r;  // unreachable -> invalid route
  r.cost = dist_[dstIndex];
  std::size_t hops = 0;
  for (std::uint32_t cur = dstIndex; cur != sourceIndex_;
       cur = csr_->edgeSource(parentEdge_[cur])) {
    OPENSPACE_ASSERT(parentEdge_[cur] != kNoEdge,
                     "every reached node except the source has a parent");
    ++hops;
  }
  r.nodes.resize(hops + 1);
  r.links.resize(hops);
  std::vector<std::uint32_t> edges(hops);
  std::uint32_t cur = dstIndex;
  for (std::size_t i = hops; i-- > 0;) {
    const std::uint32_t e = parentEdge_[cur];
    edges[i] = e;
    r.links[i] = csr_->edgeLink(e);
    r.nodes[i + 1] = csr_->nodeAt(cur);
    cur = csr_->edgeSource(e);
  }
  r.nodes[0] = csr_->nodeAt(sourceIndex_);
  // Forward-order accumulation, matching the legacy extractRoute exactly
  // (floating-point sums are order-sensitive; equivalence tests compare
  // bit-for-bit).
  for (const std::uint32_t e : edges) accumulateEdge(r, *csr_, e);
  return r;
}

std::unordered_map<NodeId, Route> PathTree::allRoutes() const {
  OPENSPACE_ASSERT(valid(), "allRoutes on a default-constructed PathTree");
  std::unordered_map<NodeId, Route> out;
  for (std::uint32_t i = 0; i < dist_.size(); ++i) {
    if (std::isinf(dist_[i])) continue;
    out.emplace(csr_->nodeAt(i), routeTo(csr_->nodeAt(i)));
  }
  return out;
}

// --- RouteEngine -------------------------------------------------------------

RouteEngine::RouteEngine(const NetworkGraph& g, const LinkCostFn& cost,
                         ProviderId home)
    : csr_(std::make_shared<const CompactGraph>(compileGraph(g, cost, home))) {}

RouteEngine::RouteEngine(std::shared_ptr<const CompactGraph> graph)
    : csr_(std::move(graph)) {
  if (!csr_) throw InvalidArgumentError("RouteEngine: null compiled graph");
}

std::uint32_t RouteEngine::requireIndex(NodeId id, const char* what) const {
  const std::uint32_t i = csr_->indexOf(id);
  if (i == CompactGraph::kInvalidIndex) throw NotFoundError(what);
  return i;
}

void RouteEngine::runDijkstra(std::uint32_t srcIndex, std::uint32_t stopAtIndex,
                              RouteScratch& scratch,
                              const StampedArray<char>* nodeMask,
                              const StampedArray<char>* edgeMask) const {
  const CompactGraph& g = *csr_;
  scratch.dist.reset(g.nodeCount());
  if (scratch.parentEdge.size() < g.nodeCount()) {
    scratch.parentEdge.resize(g.nodeCount());
  }
  scratch.frontier.clear();
  scratch.dist.set(srcIndex, 0.0);
  scratch.frontier.push(0.0, srcIndex);
  while (!scratch.frontier.empty()) {
    const auto [d, u] = scratch.frontier.pop();
    if (d > scratch.dist.getOr(u, kInf)) continue;  // stale entry
    if (u == stopAtIndex) break;
    const std::uint32_t end = g.rowEnd(u);
    for (std::uint32_t e = g.rowBegin(u); e < end; ++e) {
      if (edgeMask != nullptr && edgeMask->touched(e)) continue;
      const std::uint32_t v = g.edgeTarget(e);
      if (nodeMask != nullptr && nodeMask->touched(v)) continue;
      const double nd = d + g.edgeCost(e);
      OPENSPACE_ASSERT(nd >= d, "non-negative costs keep distances monotone");
      if (nd < scratch.dist.getOr(v, kInf)) {
        scratch.dist.set(v, nd);
        scratch.parentEdge[v] = e;  // valid while dist's stamp is current
        scratch.frontier.push(nd, v);
      }
    }
  }
}

Route RouteEngine::extractFromScratch(std::uint32_t srcIndex,
                                      std::uint32_t dstIndex,
                                      RouteScratch& scratch) const {
  const CompactGraph& g = *csr_;
  Route r;
  const double d = scratch.dist.getOr(dstIndex, kInf);
  if (std::isinf(d)) return r;  // unreachable -> invalid route
  r.cost = d;
  // First walk counts hops so every container is sized exactly once; the
  // second fills final positions back-to-front (no reversals, and the edge
  // staging buffer lives in the scratch arena).
  std::size_t hops = 0;
  for (std::uint32_t cur = dstIndex; cur != srcIndex;
       cur = g.edgeSource(scratch.parentEdge[cur])) {
    ++hops;
  }
  r.nodes.resize(hops + 1);
  r.links.resize(hops);
  scratch.pathEdges.resize(hops);
  std::uint32_t cur = dstIndex;
  for (std::size_t i = hops; i-- > 0;) {
    const std::uint32_t e = scratch.parentEdge[cur];
    scratch.pathEdges[i] = e;
    r.links[i] = g.edgeLink(e);
    r.nodes[i + 1] = g.nodeAt(cur);
    cur = g.edgeSource(e);
  }
  r.nodes[0] = g.nodeAt(srcIndex);
  // Forward-order accumulation, matching the legacy extractRoute exactly
  // (floating-point sums are order-sensitive; equivalence tests compare
  // bit-for-bit).
  for (const std::uint32_t e : scratch.pathEdges) accumulateEdge(r, g, e);
  return r;
}

Route RouteEngine::shortestPath(NodeId src, NodeId dst) const {
  const std::uint32_t s = requireIndex(src, "shortestPath: unknown endpoint node");
  const std::uint32_t t = requireIndex(dst, "shortestPath: unknown endpoint node");
  if (s == t) {
    Route r;
    r.nodes = {src};
    r.cost = 0.0;
    return r;
  }
  runDijkstra(s, t, scratch_, nullptr, nullptr);
  return extractFromScratch(s, t, scratch_);
}

PathTree RouteEngine::treeFrom(std::uint32_t srcIndex,
                               RouteScratch& scratch) const {
  runDijkstra(srcIndex, CompactGraph::kInvalidIndex, scratch, nullptr, nullptr);
  PathTree tree;
  tree.csr_ = csr_;
  tree.source_ = csr_->nodeAt(srcIndex);
  tree.sourceIndex_ = srcIndex;
  const std::size_t n = csr_->nodeCount();
  tree.dist_.resize(n);
  tree.parentEdge_.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const bool reached = scratch.dist.touched(i);
    tree.dist_[i] = reached ? scratch.dist.getOr(i, kInf) : kInf;
    tree.parentEdge_[i] =
        reached && i != srcIndex ? scratch.parentEdge[i] : kNoEdge;
  }
  return tree;
}

PathTree RouteEngine::shortestPathTree(NodeId src) const {
  const std::uint32_t s = requireIndex(src, "shortestPathTree: unknown source");
  return treeFrom(s, scratch_);
}

std::vector<PathTree> RouteEngine::batchShortestPathTrees(
    const std::vector<NodeId>& sources) const {
  // Validate every source up front so NotFoundError is thrown from the
  // calling thread, never from inside the fan-out.
  std::vector<std::uint32_t> srcIndex;
  srcIndex.reserve(sources.size());
  for (const NodeId src : sources) {
    srcIndex.push_back(
        requireIndex(src, "batchShortestPathTrees: unknown source"));
  }
  std::vector<PathTree> out(sources.size());
  parallelFor(sources.size(), kBatchChunk,
              [&](std::size_t begin, std::size_t end) {
                RouteScratch scratch;  // one arena per chunk, reused within
                for (std::size_t i = begin; i < end; ++i) {
                  out[i] = treeFrom(srcIndex[i], scratch);
                }
              });
  return out;
}

std::vector<Route> RouteEngine::kShortestPaths(NodeId src, NodeId dst,
                                               int k) const {
  if (k < 1) throw InvalidArgumentError("kShortestPaths: k must be >= 1");
  requireIndex(src, "kShortestPaths: unknown endpoint node");
  requireIndex(dst, "kShortestPaths: unknown endpoint node");

  std::vector<Route> result;
  const Route first = shortestPath(src, dst);
  if (!first.valid()) return result;
  result.push_back(first);

  // Yen's algorithm. Dedup is a hashed node-sequence set covering every
  // path ever accepted (result ∪ candidates); root-prefix costs come from
  // running prefix sums over the compiled per-edge costs, so the cost
  // model is never re-invoked on an already-priced prefix.
  std::unordered_set<std::vector<NodeId>, NodeSeqHash> seen;
  seen.insert(first.nodes);
  std::vector<Route> candidates;

  // Per-iteration prefix aggregates of result.back(): index i holds the
  // aggregate over the first i links.
  std::vector<double> prefixCost, prefixPropS, prefixQueueS, prefixBottleneckBps;

  for (int ki = 1; ki < k; ++ki) {
    const Route& prev = result.back();
    prefixCost.assign(1, 0.0);
    prefixPropS.assign(1, 0.0);
    prefixQueueS.assign(1, 0.0);
    prefixBottleneckBps.assign(1, kInf);
    for (const LinkId lid : prev.links) {
      const auto& dirEdges = csr_->edgesOfLink(lid);
      OPENSPACE_ASSERT(!dirEdges.empty(), "route links exist in the CSR");
      const std::uint32_t e = dirEdges.front();
      prefixCost.push_back(prefixCost.back() + csr_->edgeCost(e));
      prefixPropS.push_back(prefixPropS.back() + csr_->edgePropagationDelayS(e));
      prefixQueueS.push_back(prefixQueueS.back() + csr_->edgeQueueingDelayS(e));
      prefixBottleneckBps.push_back(
          std::min(prefixBottleneckBps.back(), csr_->edgeCapacityBps(e)));
    }

    for (std::size_t spur = 0; spur + 1 < prev.nodes.size(); ++spur) {
      const std::uint32_t spurIdx = csr_->indexOf(prev.nodes[spur]);
      OPENSPACE_ASSERT(spurIdx != CompactGraph::kInvalidIndex,
                       "route nodes exist in the CSR");

      forbiddenEdges_.reset(csr_->edgeCount());
      for (const Route& r : result) {
        if (r.nodes.size() > spur &&
            std::equal(r.nodes.begin(),
                       r.nodes.begin() + static_cast<std::ptrdiff_t>(spur) + 1,
                       prev.nodes.begin())) {
          if (spur < r.links.size()) {
            for (const std::uint32_t e : csr_->edgesOfLink(r.links[spur])) {
              forbiddenEdges_.set(e, char{1});
            }
          }
        }
      }
      forbiddenNodes_.reset(csr_->nodeCount());
      for (std::size_t i = 0; i < spur; ++i) {
        forbiddenNodes_.set(csr_->indexOf(prev.nodes[i]), char{1});
      }

      const std::uint32_t dstIdx = csr_->indexOf(dst);
      runDijkstra(spurIdx, dstIdx, scratch_, &forbiddenNodes_, &forbiddenEdges_);
      Route spurRoute = extractFromScratch(spurIdx, dstIdx, scratch_);
      if (!spurRoute.valid()) continue;

      // Stitch root + spur; the root prefix is already priced.
      Route total;
      total.nodes.assign(prev.nodes.begin(),
                         prev.nodes.begin() + static_cast<std::ptrdiff_t>(spur));
      total.nodes.insert(total.nodes.end(), spurRoute.nodes.begin(),
                         spurRoute.nodes.end());
      total.links.assign(prev.links.begin(),
                         prev.links.begin() + static_cast<std::ptrdiff_t>(spur));
      total.links.insert(total.links.end(), spurRoute.links.begin(),
                         spurRoute.links.end());
      total.cost = prefixCost[spur] + spurRoute.cost;
      total.propagationDelayS = prefixPropS[spur] + spurRoute.propagationDelayS;
      total.queueingDelayS = prefixQueueS[spur] + spurRoute.queueingDelayS;
      total.bottleneckBps =
          std::min(prefixBottleneckBps[spur], spurRoute.bottleneckBps);

      if (!seen.insert(total.nodes).second) continue;  // already known
      candidates.push_back(std::move(total));
    }
    if (candidates.empty()) break;
    const auto it = std::min_element(
        candidates.begin(), candidates.end(),
        [](const Route& a, const Route& b) { return a.cost < b.cost; });
    result.push_back(std::move(*it));
    candidates.erase(it);
  }
  return result;
}

}  // namespace openspace
