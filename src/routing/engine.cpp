#include <openspace/routing/engine.hpp>

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>

#include <openspace/concurrency/parallel.hpp>
#include <openspace/core/assert.hpp>
#include <openspace/core/hash.hpp>
#include <openspace/geo/error.hpp>

namespace openspace {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr std::uint32_t kNoEdge = CompactGraph::kInvalidIndex;

/// Sources per batch chunk: amortizes one scratch arena over several tree
/// runs without starving the pool on mid-sized batches. Fixed (independent
/// of thread count) so the fan-out decomposition never varies.
constexpr std::size_t kBatchChunk = 4;

/// FNV-1a over a node sequence, for Yen's hashed candidate dedup set.
struct NodeSeqHash {
  std::size_t operator()(const std::vector<NodeId>& nodes) const noexcept {
    std::uint64_t h = 0xCBF29CE484222325ull;
    for (const NodeId id : nodes) {
      h ^= id.value();
      h *= 0x100000001B3ull;
    }
    return static_cast<std::size_t>(h);
  }
};

/// Aggregate a link's contribution to a Route's QoS fields.
void accumulateEdge(Route& r, const CompactGraph& g, std::uint32_t e) {
  r.propagationDelayS += g.edgePropagationDelayS(e);
  r.queueingDelayS += g.edgeQueueingDelayS(e);
  r.bottleneckBps = std::min(r.bottleneckBps, g.edgeCapacityBps(e));
}

}  // namespace

// --- PathTree ----------------------------------------------------------------

bool PathTree::reaches(NodeId dst) const { return std::isfinite(costTo(dst)); }

double PathTree::costTo(NodeId dst) const {
  OPENSPACE_ASSERT(valid(), "costTo on a default-constructed PathTree");
  const std::uint32_t i = csr_->indexOf(dst);
  if (i == CompactGraph::kInvalidIndex) {
    throw NotFoundError("PathTree::costTo: unknown node");
  }
  return dist_[i];
}

Route PathTree::routeTo(NodeId dst) const {
  OPENSPACE_ASSERT(valid(), "routeTo on a default-constructed PathTree");
  const std::uint32_t dstIndex = csr_->indexOf(dst);
  if (dstIndex == CompactGraph::kInvalidIndex) {
    throw NotFoundError("PathTree::routeTo: unknown node");
  }
  Route r;
  if (std::isinf(dist_[dstIndex])) return r;  // unreachable -> invalid route
  r.cost = dist_[dstIndex];
  std::size_t hops = 0;
  for (std::uint32_t cur = dstIndex; cur != sourceIndex_;
       cur = csr_->edgeSource(parentEdge_[cur])) {
    OPENSPACE_ASSERT(parentEdge_[cur] != kNoEdge,
                     "every reached node except the source has a parent");
    ++hops;
  }
  r.nodes.resize(hops + 1);
  r.links.resize(hops);
  std::vector<std::uint32_t> edges(hops);
  std::uint32_t cur = dstIndex;
  for (std::size_t i = hops; i-- > 0;) {
    const std::uint32_t e = parentEdge_[cur];
    edges[i] = e;
    r.links[i] = csr_->edgeLink(e);
    r.nodes[i + 1] = csr_->nodeAt(cur);
    cur = csr_->edgeSource(e);
  }
  r.nodes[0] = csr_->nodeAt(sourceIndex_);
  // Forward-order accumulation, matching the legacy extractRoute exactly
  // (floating-point sums are order-sensitive; equivalence tests compare
  // bit-for-bit).
  for (const std::uint32_t e : edges) accumulateEdge(r, *csr_, e);
  return r;
}

std::unordered_map<NodeId, Route> PathTree::allRoutes() const {
  OPENSPACE_ASSERT(valid(), "allRoutes on a default-constructed PathTree");
  std::unordered_map<NodeId, Route> out;
  for (std::uint32_t i = 0; i < dist_.size(); ++i) {
    if (std::isinf(dist_[i])) continue;
    out.emplace(csr_->nodeAt(i), routeTo(csr_->nodeAt(i)));
  }
  return out;
}

// --- RouteEngine -------------------------------------------------------------

RouteEngine::RouteEngine(const NetworkGraph& g, const LinkCostFn& cost,
                         ProviderId home)
    : csr_(std::make_shared<const CompactGraph>(compileGraph(g, cost, home))) {}

RouteEngine::RouteEngine(std::shared_ptr<const CompactGraph> graph)
    : csr_(std::move(graph)) {
  if (!csr_) throw InvalidArgumentError("RouteEngine: null compiled graph");
}

std::uint32_t RouteEngine::requireIndex(NodeId id, const char* what) const {
  const std::uint32_t i = csr_->indexOf(id);
  if (i == CompactGraph::kInvalidIndex) throw NotFoundError(what);
  return i;
}

void RouteEngine::runDijkstra(std::uint32_t srcIndex, std::uint32_t stopAtIndex,
                              RouteScratch& scratch,
                              const StampedArray<char>* nodeMask,
                              const StampedArray<char>* edgeMask) const {
  const CompactGraph& g = *csr_;
  scratch.dist.reset(g.nodeCount());
  if (scratch.parentEdge.size() < g.nodeCount()) {
    scratch.parentEdge.resize(g.nodeCount());
  }
  scratch.frontier.clear();
  scratch.dist.set(srcIndex, 0.0);
  scratch.frontier.push(0.0, srcIndex);
  while (!scratch.frontier.empty()) {
    const auto [d, u] = scratch.frontier.pop();
    if (d > scratch.dist.getOr(u, kInf)) continue;  // stale entry
    if (u == stopAtIndex) break;
    const std::uint32_t end = g.rowEnd(u);
    for (std::uint32_t e = g.rowBegin(u); e < end; ++e) {
      if (edgeMask != nullptr && edgeMask->touched(e)) continue;
      const std::uint32_t v = g.edgeTarget(e);
      if (nodeMask != nullptr && nodeMask->touched(v)) continue;
      const double nd = d + g.edgeCost(e);
      OPENSPACE_ASSERT(nd >= d, "non-negative costs keep distances monotone");
      if (nd < scratch.dist.getOr(v, kInf)) {
        scratch.dist.set(v, nd);
        scratch.parentEdge[v] = e;  // valid while dist's stamp is current
        scratch.frontier.push(nd, v);
      }
    }
  }
}

Route RouteEngine::extractFromScratch(std::uint32_t srcIndex,
                                      std::uint32_t dstIndex,
                                      RouteScratch& scratch) const {
  const CompactGraph& g = *csr_;
  Route r;
  const double d = scratch.dist.getOr(dstIndex, kInf);
  if (std::isinf(d)) return r;  // unreachable -> invalid route
  r.cost = d;
  // First walk counts hops so every container is sized exactly once; the
  // second fills final positions back-to-front (no reversals, and the edge
  // staging buffer lives in the scratch arena).
  std::size_t hops = 0;
  for (std::uint32_t cur = dstIndex; cur != srcIndex;
       cur = g.edgeSource(scratch.parentEdge[cur])) {
    ++hops;
  }
  r.nodes.resize(hops + 1);
  r.links.resize(hops);
  scratch.pathEdges.resize(hops);
  std::uint32_t cur = dstIndex;
  for (std::size_t i = hops; i-- > 0;) {
    const std::uint32_t e = scratch.parentEdge[cur];
    scratch.pathEdges[i] = e;
    r.links[i] = g.edgeLink(e);
    r.nodes[i + 1] = g.nodeAt(cur);
    cur = g.edgeSource(e);
  }
  r.nodes[0] = g.nodeAt(srcIndex);
  // Forward-order accumulation, matching the legacy extractRoute exactly
  // (floating-point sums are order-sensitive; equivalence tests compare
  // bit-for-bit).
  for (const std::uint32_t e : scratch.pathEdges) accumulateEdge(r, g, e);
  return r;
}

Route RouteEngine::shortestPath(NodeId src, NodeId dst) const {
  const std::uint32_t s = requireIndex(src, "shortestPath: unknown endpoint node");
  const std::uint32_t t = requireIndex(dst, "shortestPath: unknown endpoint node");
  if (s == t) {
    Route r;
    r.nodes = {src};
    r.cost = 0.0;
    return r;
  }
  runDijkstra(s, t, scratch_, nullptr, nullptr);
  return extractFromScratch(s, t, scratch_);
}

PathTree RouteEngine::treeFrom(std::uint32_t srcIndex,
                               RouteScratch& scratch) const {
  runDijkstra(srcIndex, CompactGraph::kInvalidIndex, scratch, nullptr, nullptr);
  PathTree tree;
  tree.csr_ = csr_;
  tree.source_ = csr_->nodeAt(srcIndex);
  tree.sourceIndex_ = srcIndex;
  const std::size_t n = csr_->nodeCount();
  tree.dist_.resize(n);
  tree.parentEdge_.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const bool reached = scratch.dist.touched(i);
    tree.dist_[i] = reached ? scratch.dist.getOr(i, kInf) : kInf;
    tree.parentEdge_[i] =
        reached && i != srcIndex ? scratch.parentEdge[i] : kNoEdge;
  }
  return tree;
}

PathTree RouteEngine::shortestPathTree(NodeId src) const {
  const std::uint32_t s = requireIndex(src, "shortestPathTree: unknown source");
  return treeFrom(s, scratch_);
}

PathTree RouteEngine::repairShortestPathTree(const PathTree& previous,
                                             TreeRepairStats* stats) const {
  TreeRepairStats local;
  TreeRepairStats& st = stats != nullptr ? *stats : local;
  st = TreeRepairStats{};
  if (!previous.valid()) {
    throw InvalidArgumentError(
        "repairShortestPathTree: previous tree is default-constructed");
  }
  const auto fresh = [&](const char* why) {
    st.repaired = false;
    st.fallbackReason = why;
    return shortestPathTree(previous.source_);
  };
  if (previous.csr_.get() == csr_.get()) {
    st.repaired = true;  // same compiled graph object: nothing can differ
    return previous;
  }
  const CompactGraph& oldG = *previous.csr_;
  const CompactGraph& g = *csr_;
  const std::size_t n = g.nodeCount();
  const std::size_t edgeCount = g.edgeCount();
  RepairScratch& rs = repair_;

  // Everything up to the dist repair is source-independent: computed once
  // per (previous, current) graph pair and cached (see RepairScratch), so
  // repairing one tree per source of a sweep step pays for it once.
  if (rs.cachedPrev.get() != previous.csr_.get()) {
    rs.cachedPrev.reset();
    rs.cachedFallback = [&]() -> const char* {
      rs.diffStats = TreeRepairStats{};
      if (oldG.nodeCount() != n) return "node-set-changed";
      for (std::uint32_t i = 0; i < n; ++i) {
        if (oldG.nodeAt(i) != g.nodeAt(i)) return "node-set-changed";
      }
      // Repair preconditions on the new graph. Strictly positive costs
      // make equal-dist settle order index-sorted (the parent closed form
      // below depends on it); two-way links let a node enumerate its
      // incoming edges through its own CSR row. Builder-produced graphs
      // always satisfy both.
      for (std::uint32_t e = 0; e < edgeCount; ++e) {
        if (!(g.edgeCost(e) > 0.0)) return "nonpositive-cost-edge";
        if (g.edgesOfLink(g.edgeLink(e)).size() != 2) return "one-way-link";
      }

      // --- Edge diff: per-row matching by target node -------------------
      // Seeds are the nodes whose INCOMING edge set changed — an edge
      // u->v lives in u's row, so scanning every row and seeding the
      // edge's target covers exactly the incoming sets. Matched unchanged
      // edges also yield the old->new parent-edge remap.
      TreeRepairStats& ds = rs.diffStats;
      rs.claimed.reset(edgeCount);
      rs.seedMark.reset(n);
      rs.seeds.clear();
      rs.diffSuspects.clear();
      rs.oldToNew.assign(oldG.edgeCount(), kNoEdge);
      const auto seed = [&](std::uint32_t v) {
        if (!rs.seedMark.touched(v)) {
          rs.seedMark.set(v, char{1});
          rs.seeds.push_back(v);
        }
      };
      for (std::uint32_t u = 0; u < n; ++u) {
        rs.rowTarget.reset(n);
        const std::uint32_t nb = g.rowBegin(u);
        const std::uint32_t ne = g.rowEnd(u);
        for (std::uint32_t e = nb; e < ne; ++e) {
          const std::uint32_t t = g.edgeTarget(e);
          if (rs.rowTarget.touched(t)) {
            // Parallel links between one pair: positional matching is
            // ambiguous, so force the target through the full
            // re-derivation.
            seed(t);
            rs.diffSuspects.push_back(t);
          } else {
            rs.rowTarget.set(t, e);
          }
        }
        const std::uint32_t oe = oldG.rowEnd(u);
        for (std::uint32_t e0 = oldG.rowBegin(u); e0 < oe; ++e0) {
          const std::uint32_t t = oldG.edgeTarget(e0);
          const std::uint32_t e1 = rs.rowTarget.getOr(t, kNoEdge);
          if (e1 == kNoEdge || rs.claimed.touched(e1)) {
            ++ds.removedEdges;
            seed(t);
            continue;
          }
          rs.claimed.set(e1, char{1});
          rs.oldToNew[e0] = e1;
          if (bitsOf(oldG.edgeCost(e0)) != bitsOf(g.edgeCost(e1))) {
            ++ds.changedEdges;
            seed(t);
          }
        }
        for (std::uint32_t e = nb; e < ne; ++e) {
          if (!rs.claimed.touched(e)) {
            ++ds.addedEdges;
            seed(g.edgeTarget(e));
          }
        }
      }
      ds.seedNodes = rs.seeds.size();
      // A diff touching a large fraction of the nodes repairs slower than
      // it recomputes (every seed pays an incoming-row scan plus queue
      // traffic); hand the whole step to the plain Dijkstra instead.
      if (rs.seeds.size() * 4 > n) return "seed-flood";
      return nullptr;
    }();
    rs.cachedPrev = previous.csr_;
  }
  st.changedEdges = rs.diffStats.changedEdges;
  st.addedEdges = rs.diffStats.addedEdges;
  st.removedEdges = rs.diffStats.removedEdges;
  st.seedNodes = rs.diffStats.seedNodes;
  if (rs.cachedFallback != nullptr) return fresh(rs.cachedFallback);
  rs.suspectMark.reset(n);
  for (const std::uint32_t v : rs.diffSuspects) rs.suspectMark.set(v, char{1});

  // --- Dist repair (Ramalingam–Reps / DynamicSWSF-FP) --------------------
  // dist starts as the previous fixpoint; every node outside the seed set
  // is consistent by construction (same incoming candidate multiset), so
  // the queue drains exactly the delta-affected region. Positive costs
  // make the consistent fixpoint unique — and computing each rhs as a min
  // over the same double expressions fresh Dijkstra evaluates keeps the
  // repaired dist array bit-identical to a fresh run's.
  const std::uint32_t srcIdx = previous.sourceIndex_;
  std::vector<double> dist = previous.dist_;
  const auto rhsOf = [&](std::uint32_t v) {
    double best = kInf;
    const std::uint32_t end = g.rowEnd(v);
    for (std::uint32_t e = g.rowBegin(v); e < end; ++e) {
      const auto le = g.edgesOfLink(g.edgeLink(e));
      const std::uint32_t er = le.e[0] == e ? le.e[1] : le.e[0];  // u -> v
      best = std::min(best, dist[g.edgeTarget(e)] + g.edgeCost(er));
    }
    return best;
  };
  const auto consider = [&](std::uint32_t v) {
    if (v == srcIdx) return;
    const double r = rhsOf(v);
    if (bitsOf(r) != bitsOf(dist[v])) rs.queue.push(std::min(dist[v], r), v);
  };
  rs.queue.clear();
  for (const std::uint32_t v : rs.seeds) consider(v);
  while (!rs.queue.empty()) {
    const auto [key, v] = rs.queue.pop();
    const double d = dist[v];
    const double r = rhsOf(v);
    if (bitsOf(key) != bitsOf(std::min(d, r))) continue;  // stale entry
    if (bitsOf(d) == bitsOf(r)) continue;                 // became consistent
    ++st.queuePops;
    if (r < d) {
      dist[v] = r;  // under-consistent: lower to the supported value
    } else {
      dist[v] = kInf;  // over-consistent: raise, then let rhs re-lower it
      consider(v);
    }
    const std::uint32_t end = g.rowEnd(v);
    for (std::uint32_t e = g.rowBegin(v); e < end; ++e) {
      consider(g.edgeTarget(e));
    }
  }

  // --- Parent finalization ----------------------------------------------
  // Fresh Dijkstra's parent of v is the first final-value relaxation in
  // settle order: the incoming candidate minimizing (dist(u)+c, dist(u),
  // u, e) lexicographically. Only suspects — nodes whose dist or incoming
  // candidates changed, i.e. seeds, dist-changed nodes, and neighbors of
  // dist-changed nodes — can have a different argmin than before; every
  // other node keeps its previous parent edge, remapped.
  for (std::uint32_t v = 0; v < n; ++v) {
    if (bitsOf(dist[v]) == bitsOf(previous.dist_[v])) continue;
    rs.suspectMark.set(v, char{1});
    const std::uint32_t end = g.rowEnd(v);
    for (std::uint32_t e = g.rowBegin(v); e < end; ++e) {
      rs.suspectMark.set(g.edgeTarget(e), char{1});
    }
  }
  for (const std::uint32_t v : rs.seeds) rs.suspectMark.set(v, char{1});

  PathTree tree;
  tree.csr_ = csr_;
  tree.source_ = previous.source_;
  tree.sourceIndex_ = srcIdx;
  tree.parentEdge_.resize(n);
  for (std::uint32_t v = 0; v < n; ++v) {
    if (v == srcIdx || std::isinf(dist[v])) {
      tree.parentEdge_[v] = kNoEdge;
      continue;
    }
    if (!rs.suspectMark.touched(v)) {
      const std::uint32_t pOld = previous.parentEdge_[v];
      OPENSPACE_ASSERT(pOld != kNoEdge, "reached non-source node has a parent");
      const std::uint32_t pNew = rs.oldToNew[pOld];
      OPENSPACE_ASSERT(pNew != kNoEdge,
                       "an unsuspected node's parent edge persisted");
      tree.parentEdge_[v] = pNew;
      continue;
    }
    ++st.parentRecomputes;
    double bestNd = kInf;
    double bestDu = kInf;
    std::uint32_t bestU = 0;
    std::uint32_t bestE = kNoEdge;
    const std::uint32_t end = g.rowEnd(v);
    for (std::uint32_t e = g.rowBegin(v); e < end; ++e) {
      const std::uint32_t u = g.edgeTarget(e);
      if (std::isinf(dist[u])) continue;
      const auto le = g.edgesOfLink(g.edgeLink(e));
      const std::uint32_t er = le.e[0] == e ? le.e[1] : le.e[0];  // u -> v
      const double nd = dist[u] + g.edgeCost(er);
      const bool better =
          bestE == kNoEdge || nd < bestNd ||
          (bitsOf(nd) == bitsOf(bestNd) &&
           (dist[u] < bestDu ||
            (bitsOf(dist[u]) == bitsOf(bestDu) &&
             (u < bestU || (u == bestU && er < bestE)))));
      if (better) {
        bestNd = nd;
        bestDu = dist[u];
        bestU = u;
        bestE = er;
      }
    }
    OPENSPACE_ASSERT(bestE != kNoEdge && bitsOf(bestNd) == bitsOf(dist[v]),
                     "recomputed parent supports the repaired distance");
    tree.parentEdge_[v] = bestE;
  }
  tree.dist_ = std::move(dist);
  st.repaired = true;
  return tree;
}

std::vector<PathTree> RouteEngine::batchShortestPathTrees(
    const std::vector<NodeId>& sources) const {
  // Validate every source up front so NotFoundError is thrown from the
  // calling thread, never from inside the fan-out.
  std::vector<std::uint32_t> srcIndex;
  srcIndex.reserve(sources.size());
  for (const NodeId src : sources) {
    srcIndex.push_back(
        requireIndex(src, "batchShortestPathTrees: unknown source"));
  }
  std::vector<PathTree> out(sources.size());
  parallelFor(sources.size(), kBatchChunk,
              [&](std::size_t begin, std::size_t end) {
                RouteScratch scratch;  // one arena per chunk, reused within
                for (std::size_t i = begin; i < end; ++i) {
                  out[i] = treeFrom(srcIndex[i], scratch);
                }
              });
  return out;
}

std::vector<Route> RouteEngine::kShortestPaths(NodeId src, NodeId dst,
                                               int k) const {
  if (k < 1) throw InvalidArgumentError("kShortestPaths: k must be >= 1");
  requireIndex(src, "kShortestPaths: unknown endpoint node");
  requireIndex(dst, "kShortestPaths: unknown endpoint node");

  std::vector<Route> result;
  const Route first = shortestPath(src, dst);
  if (!first.valid()) return result;
  result.push_back(first);

  // Yen's algorithm. Dedup is a hashed node-sequence set covering every
  // path ever accepted (result ∪ candidates); root-prefix costs come from
  // running prefix sums over the compiled per-edge costs, so the cost
  // model is never re-invoked on an already-priced prefix.
  std::unordered_set<std::vector<NodeId>, NodeSeqHash> seen;
  seen.insert(first.nodes);
  std::vector<Route> candidates;

  // Per-iteration prefix aggregates of result.back(): index i holds the
  // aggregate over the first i links.
  std::vector<double> prefixCost, prefixPropS, prefixQueueS, prefixBottleneckBps;

  for (int ki = 1; ki < k; ++ki) {
    const Route& prev = result.back();
    prefixCost.assign(1, 0.0);
    prefixPropS.assign(1, 0.0);
    prefixQueueS.assign(1, 0.0);
    prefixBottleneckBps.assign(1, kInf);
    for (const LinkId lid : prev.links) {
      const auto& dirEdges = csr_->edgesOfLink(lid);
      OPENSPACE_ASSERT(!dirEdges.empty(), "route links exist in the CSR");
      const std::uint32_t e = dirEdges.front();
      prefixCost.push_back(prefixCost.back() + csr_->edgeCost(e));
      prefixPropS.push_back(prefixPropS.back() + csr_->edgePropagationDelayS(e));
      prefixQueueS.push_back(prefixQueueS.back() + csr_->edgeQueueingDelayS(e));
      prefixBottleneckBps.push_back(
          std::min(prefixBottleneckBps.back(), csr_->edgeCapacityBps(e)));
    }

    for (std::size_t spur = 0; spur + 1 < prev.nodes.size(); ++spur) {
      const std::uint32_t spurIdx = csr_->indexOf(prev.nodes[spur]);
      OPENSPACE_ASSERT(spurIdx != CompactGraph::kInvalidIndex,
                       "route nodes exist in the CSR");

      forbiddenEdges_.reset(csr_->edgeCount());
      for (const Route& r : result) {
        if (r.nodes.size() > spur &&
            std::equal(r.nodes.begin(),
                       r.nodes.begin() + static_cast<std::ptrdiff_t>(spur) + 1,
                       prev.nodes.begin())) {
          if (spur < r.links.size()) {
            for (const std::uint32_t e : csr_->edgesOfLink(r.links[spur])) {
              forbiddenEdges_.set(e, char{1});
            }
          }
        }
      }
      forbiddenNodes_.reset(csr_->nodeCount());
      for (std::size_t i = 0; i < spur; ++i) {
        forbiddenNodes_.set(csr_->indexOf(prev.nodes[i]), char{1});
      }

      const std::uint32_t dstIdx = csr_->indexOf(dst);
      runDijkstra(spurIdx, dstIdx, scratch_, &forbiddenNodes_, &forbiddenEdges_);
      Route spurRoute = extractFromScratch(spurIdx, dstIdx, scratch_);
      if (!spurRoute.valid()) continue;

      // Stitch root + spur; the root prefix is already priced.
      Route total;
      total.nodes.assign(prev.nodes.begin(),
                         prev.nodes.begin() + static_cast<std::ptrdiff_t>(spur));
      total.nodes.insert(total.nodes.end(), spurRoute.nodes.begin(),
                         spurRoute.nodes.end());
      total.links.assign(prev.links.begin(),
                         prev.links.begin() + static_cast<std::ptrdiff_t>(spur));
      total.links.insert(total.links.end(), spurRoute.links.begin(),
                         spurRoute.links.end());
      total.cost = prefixCost[spur] + spurRoute.cost;
      total.propagationDelayS = prefixPropS[spur] + spurRoute.propagationDelayS;
      total.queueingDelayS = prefixQueueS[spur] + spurRoute.queueingDelayS;
      total.bottleneckBps =
          std::min(prefixBottleneckBps[spur], spurRoute.bottleneckBps);

      if (!seen.insert(total.nodes).second) continue;  // already known
      candidates.push_back(std::move(total));
    }
    if (candidates.empty()) break;
    const auto it = std::min_element(
        candidates.begin(), candidates.end(),
        [](const Route& a, const Route& b) { return a.cost < b.cost; });
    result.push_back(std::move(*it));
    candidates.erase(it);
  }
  return result;
}

}  // namespace openspace
