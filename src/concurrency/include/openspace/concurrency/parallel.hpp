// Fixed thread pool + deterministic parallel-for.
//
// The snapshot engine and the Monte-Carlo samplers fan work out over a
// process-wide pool of worker threads. Determinism is preserved by
// construction: parallelFor always decomposes the index range into the
// same chunks regardless of how many threads execute them, so any kernel
// that derives its state (e.g. an RNG stream) from the chunk index and
// writes results only into its own chunk's slots produces bit-identical
// output whether it runs on one thread or sixteen.
//
// Thread count resolution, in priority order:
//   1. setParallelThreadCount(n)        (runtime override, used by tests)
//   2. OPENSPACE_THREADS environment variable
//   3. std::thread::hardware_concurrency()
// A count of 1 short-circuits to a serial in-line loop over the same
// chunk decomposition — the reference path the determinism tests compare
// against.
#pragma once

#include <cstddef>
#include <functional>

namespace openspace {

/// Effective worker count parallelFor will use (>= 1).
int parallelThreadCount() noexcept;

/// Override the worker count at runtime. Values < 1 are clamped to 1;
/// 1 forces the serial fallback. Thread-safe.
void setParallelThreadCount(int n) noexcept;

/// Invoke `fn(begin, end)` over [0, count) split into chunks of `chunk`
/// indices (the final chunk may be short). Chunk boundaries are identical
/// in serial and parallel execution. Nested calls (from inside a worker)
/// and calls while another parallelFor is active on this thread run
/// serially in-line, so callers may compose freely without deadlock.
/// Exceptions thrown by `fn` are captured and rethrown to the caller
/// (first one wins). Throws InvalidArgumentError if chunk == 0.
void parallelFor(std::size_t count, std::size_t chunk,
                 const std::function<void(std::size_t, std::size_t)>& fn);

}  // namespace openspace
