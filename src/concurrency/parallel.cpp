#include <openspace/concurrency/parallel.hpp>

#include <atomic>
#include <cstdlib>
#include <exception>
#include <thread>
#include <vector>

#include <openspace/core/thread_annotations.hpp>
#include <openspace/geo/error.hpp>

namespace openspace {

namespace {

int defaultThreadCount() noexcept {
  // Read once, before any worker thread exists, from the thread that runs
  // the first parallelFor — no concurrent setenv in this process.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const char* env = std::getenv("OPENSPACE_THREADS")) {
    const int n = std::atoi(env);
    if (n >= 1) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

std::atomic<int>& threadCountSlot() noexcept {
  static std::atomic<int> count{defaultThreadCount()};
  return count;
}

/// True while this thread is executing chunks (worker or caller): nested
/// parallelFor calls must run in-line rather than wait on the pool.
thread_local bool tInParallelRegion = false;

/// One fan-out: a chunked index range plus completion bookkeeping.
struct Job {
  const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
  std::size_t count = 0;
  std::size_t chunk = 0;
  std::size_t numChunks = 0;
  std::atomic<std::size_t> nextChunk{0};
  std::atomic<std::size_t> chunksDone{0};
  std::atomic<std::size_t> activeWorkers{0};
  Mutex doneMutex;
  ConditionVariable doneCv;
  std::exception_ptr error OPENSPACE_GUARDED_BY(doneMutex);

  void runChunks() {
    for (;;) {
      const std::size_t c = nextChunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= numChunks) break;
      const std::size_t begin = c * chunk;
      const std::size_t end = std::min(count, begin + chunk);
      try {
        (*fn)(begin, end);
      } catch (...) {
        MutexLock lock(doneMutex);
        if (!error) error = std::current_exception();
      }
      if (chunksDone.fetch_add(1, std::memory_order_acq_rel) + 1 == numChunks) {
        MutexLock lock(doneMutex);
        doneCv.notify_all();
      }
    }
  }
};

/// Process-wide fixed pool. Workers are spawned lazily up to the requested
/// count and persist for the process lifetime; one job runs at a time
/// (concurrent parallelFor calls from distinct threads serialize).
class ThreadPool {
 public:
  static ThreadPool& instance() {
    static ThreadPool pool;
    return pool;
  }

  void run(Job& job, int helperThreads) OPENSPACE_EXCLUDES(mutex_) {
    MutexLock serialize(jobSerialMutex_);
    {
      MutexLock lock(mutex_);
      ensureWorkersLocked(helperThreads);
      job_ = &job;
      ++generation_;
    }
    cv_.notify_all();
    tInParallelRegion = true;
    job.runChunks();
    tInParallelRegion = false;
    // Every chunk index is claimed once the caller's runChunks returns, so
    // a worker registering now would do no work. Unpublish the job BEFORE
    // waiting for completion: a late-waking worker then sees job_ == nullptr
    // and can never register against a job whose wait may already have been
    // satisfied (which would let the caller destroy the stack-allocated Job
    // while the worker still holds a pointer to it).
    {
      MutexLock lock(mutex_);
      job_ = nullptr;
    }
    std::exception_ptr error;
    {
      MutexLock lock(job.doneMutex);
      while (job.chunksDone.load(std::memory_order_acquire) != job.numChunks ||
             job.activeWorkers.load(std::memory_order_acquire) != 0) {
        job.doneCv.wait(job.doneMutex);
      }
      error = job.error;
    }
    if (error) std::rethrow_exception(error);
  }

  ~ThreadPool() {
    {
      MutexLock lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

 private:
  ThreadPool() = default;

  void ensureWorkersLocked(int wanted) OPENSPACE_REQUIRES(mutex_) {
    while (static_cast<int>(workers_.size()) < wanted) {
      workers_.emplace_back([this] { workerLoop(); });
    }
  }

  /// Block until a job newer than `seenGeneration` is published (updating
  /// the generation and registering as an active worker) or the pool stops
  /// (returning nullptr).
  Job* awaitJob(std::uint64_t& seenGeneration) OPENSPACE_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    while (!stop_ && (job_ == nullptr || generation_ == seenGeneration)) {
      cv_.wait(mutex_);
    }
    if (stop_) return nullptr;
    seenGeneration = generation_;
    Job* job = job_;
    job->activeWorkers.fetch_add(1, std::memory_order_acq_rel);
    return job;
  }

  void workerLoop() {
    std::uint64_t seenGeneration = 0;
    while (Job* job = awaitJob(seenGeneration)) {
      tInParallelRegion = true;
      job->runChunks();
      tInParallelRegion = false;
      // Deregister while holding doneMutex: the caller's completion wait
      // evaluates its predicate under the same lock, so it cannot observe
      // activeWorkers == 0 and destroy the Job between our decrement and
      // this notify.
      {
        MutexLock lock(job->doneMutex);
        job->activeWorkers.fetch_sub(1, std::memory_order_acq_rel);
        job->doneCv.notify_all();
      }
    }
  }

  Mutex jobSerialMutex_;  ///< One fan-out at a time.
  Mutex mutex_;
  ConditionVariable cv_;
  /// Worker handles: appended under mutex_ by ensureWorkersLocked, drained
  /// join-side only by the destructor (after every worker has exited).
  std::vector<std::thread> workers_ OPENSPACE_GUARDED_BY(mutex_);
  Job* job_ OPENSPACE_GUARDED_BY(mutex_) = nullptr;
  std::uint64_t generation_ OPENSPACE_GUARDED_BY(mutex_) = 0;
  bool stop_ OPENSPACE_GUARDED_BY(mutex_) = false;
};

}  // namespace

int parallelThreadCount() noexcept {
  return threadCountSlot().load(std::memory_order_relaxed);
}

void setParallelThreadCount(int n) noexcept {
  threadCountSlot().store(n < 1 ? 1 : n, std::memory_order_relaxed);
}

void parallelFor(std::size_t count, std::size_t chunk,
                 const std::function<void(std::size_t, std::size_t)>& fn) {
  if (chunk == 0) throw InvalidArgumentError("parallelFor: chunk must be > 0");
  if (count == 0) return;
  const std::size_t numChunks = (count + chunk - 1) / chunk;
  const int threads = parallelThreadCount();
  if (threads <= 1 || numChunks <= 1 || tInParallelRegion) {
    // Serial fallback over the identical chunk decomposition.
    for (std::size_t c = 0; c < numChunks; ++c) {
      const std::size_t begin = c * chunk;
      fn(begin, std::min(count, begin + chunk));
    }
    return;
  }
  Job job;
  job.fn = &fn;
  job.count = count;
  job.chunk = chunk;
  job.numChunks = numChunks;
  const std::size_t helpers =
      std::min<std::size_t>(static_cast<std::size_t>(threads) - 1, numChunks - 1);
  ThreadPool::instance().run(job, static_cast<int>(helpers));
}

}  // namespace openspace
