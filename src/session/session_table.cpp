#include <openspace/session/session_table.hpp>

#include <algorithm>

#include <openspace/concurrency/parallel.hpp>
#include <openspace/core/hash.hpp>
#include <openspace/geo/error.hpp>

namespace openspace {

namespace {

/// Splitmix64-style finalizer spreading user ids over shards. Any stable
/// mix works — it only has to be a pure function of the id so a session's
/// shard never changes.
std::uint64_t mixUser(std::uint64_t v) noexcept {
  v += 0x9E3779B97F4A7C15ull;
  v = (v ^ (v >> 30)) * 0xBF58476D1CE4E5B9ull;
  v = (v ^ (v >> 27)) * 0x94D049BB133111EBull;
  return v ^ (v >> 31);
}

}  // namespace

std::string_view sessionStateName(SessionState s) noexcept {
  switch (s) {
    case SessionState::Serving: return "serving";
    case SessionState::Scanning: return "scanning";
    case SessionState::Disassociated: return "disassociated";
  }
  return "?";
}

bool SessionTable::CertificateCache::hit(UserId user, std::uint64_t tag) {
  const auto it = index_.find(user);
  if (it == index_.end() || it->second->tag != tag) return false;
  order_.splice(order_.begin(), order_, it->second);
  return true;
}

void SessionTable::CertificateCache::insert(UserId user, std::uint64_t tag) {
  const auto it = index_.find(user);
  if (it != index_.end()) {
    it->second->tag = tag;
    order_.splice(order_.begin(), order_, it->second);
    return;
  }
  order_.push_front(Entry{user, tag});
  index_.emplace(user, order_.begin());
  bytes_ += kEntryBytes;
  // The just-inserted entry is exempt, so a tiny budget still caches one.
  while (order_.size() > 1 && bytes_ > byteBudget_) {
    index_.erase(order_.back().user);
    order_.pop_back();
    bytes_ -= kEntryBytes;
  }
}

void SessionTable::CertificateCache::invalidate(UserId user) {
  const auto it = index_.find(user);
  if (it == index_.end()) return;
  order_.erase(it->second);
  index_.erase(it);
  bytes_ -= kEntryBytes;
}

std::size_t SessionTable::CertificateCache::setByteBudget(std::size_t bytes) {
  const std::size_t previous = byteBudget_;
  byteBudget_ = bytes == 0 ? 1 : bytes;
  while (order_.size() > 1 && bytes_ > byteBudget_) {
    index_.erase(order_.back().user);
    order_.pop_back();
    bytes_ -= kEntryBytes;
  }
  return previous;
}

SessionTable::SessionTable(std::size_t fleetSize, std::size_t shardCount)
    : fleetSize_(fleetSize) {
  if (fleetSize == 0) {
    throw InvalidArgumentError("SessionTable: fleetSize must be > 0");
  }
  shardCount = std::max<std::size_t>(shardCount, 1);
  shards_.reserve(shardCount);
  for (std::size_t s = 0; s < shardCount; ++s) {
    auto shard = std::make_unique<Shard>();
    {
      MutexLock lock(shard->mu);
      shard->st.satOccupancy.assign(fleetSize, 0);
    }
    shards_.push_back(std::move(shard));
  }
}

SessionTable::~SessionTable() = default;

std::uint32_t SessionTable::shardOf(UserId user) const noexcept {
  return static_cast<std::uint32_t>(mixUser(user) % shards_.size());
}

void SessionTable::heapPush(std::vector<HeapEntry>& heap, HeapEntry e) {
  const auto later = [](const HeapEntry& a, const HeapEntry& b) {
    return a.atS > b.atS || (a.atS == b.atS && a.slot > b.slot);
  };
  heap.push_back(e);
  std::push_heap(heap.begin(), heap.end(), later);
}

SessionTable::HeapEntry SessionTable::heapPop(std::vector<HeapEntry>& heap) {
  const auto later = [](const HeapEntry& a, const HeapEntry& b) {
    return a.atS > b.atS || (a.atS == b.atS && a.slot > b.slot);
  };
  std::pop_heap(heap.begin(), heap.end(), later);
  const HeapEntry e = heap.back();
  heap.pop_back();
  return e;
}

std::size_t SessionTable::size() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    n += shard->st.user.size();
  }
  return n;
}

std::size_t SessionTable::activeCount() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    for (const SessionState s : shard->st.state) {
      n += s != SessionState::Disassociated ? 1 : 0;
    }
  }
  return n;
}

std::vector<std::uint64_t> SessionTable::perSatelliteOccupancy() const {
  std::vector<std::uint64_t> out(fleetSize_, 0);
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    for (std::size_t i = 0; i < fleetSize_; ++i) {
      out[i] += shard->st.satOccupancy[i];
    }
  }
  return out;
}

std::optional<SessionTable::SessionView> SessionTable::find(UserId user) const {
  const Shard& shard = *shards_[shardOf(user)];
  MutexLock lock(shard.mu);
  const auto it = shard.st.slotOf.find(user);
  if (it == shard.st.slotOf.end()) return std::nullopt;
  const std::uint32_t slot = it->second;
  SessionView v;
  v.state = shard.st.state[slot];
  v.servingSat = shard.st.servingSat[slot];
  v.nextEventS = shard.st.nextEventS[slot];
  v.certExpiresAtS = shard.st.certExpiresAtS[slot];
  v.certTag = shard.st.certTag[slot];
  return v;
}

std::uint64_t SessionTable::stateChecksum() const {
  std::uint64_t h = kFnvOffsetBasis;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    const State& st = shard->st;
    for (std::size_t i = 0; i < st.user.size(); ++i) {
      h = fnv1a(h, st.user[i]);
      h = fnv1a(h, static_cast<std::uint64_t>(st.state[i]));
      h = fnv1a(h, st.servingSat[i]);
      h = fnv1a(h, bitsOf(st.nextEventS[i]));
      h = fnv1a(h, bitsOf(st.outageFromS[i]));
      h = fnv1a(h, bitsOf(st.certExpiresAtS[i]));
      h = fnv1a(h, st.certTag[i]);
    }
  }
  return h;
}

std::size_t SessionTable::approxBytes() const {
  std::size_t bytes = sizeof(*this);
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    const State& st = shard->st;
    bytes += sizeof(Shard);
    bytes += st.user.capacity() * sizeof(UserId);
    bytes += st.site.capacity() * sizeof(Geodetic);
    bytes += st.siteEcef.capacity() * sizeof(Vec3);
    bytes += st.servingSat.capacity() * sizeof(std::uint32_t);
    bytes += st.nextEventS.capacity() * sizeof(double);
    bytes += st.outageFromS.capacity() * sizeof(double);
    bytes += st.certExpiresAtS.capacity() * sizeof(double);
    bytes += st.certTag.capacity() * sizeof(std::uint64_t);
    bytes += st.state.capacity() * sizeof(SessionState);
    bytes += st.heap.capacity() * sizeof(HeapEntry);
    bytes += st.scanning.capacity() * sizeof(std::uint32_t);
    bytes += st.satOccupancy.capacity() * sizeof(std::uint64_t);
    bytes += st.slotOf.size() *
             (sizeof(UserId) + sizeof(std::uint32_t) + 2 * sizeof(void*));
    bytes += st.certCache.approxBytes();
  }
  return bytes;
}

std::size_t SessionTable::setCertificateCacheByteBudget(std::size_t bytes) {
  const std::size_t perShard = bytes / shards_.size();
  std::size_t previousTotal = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    previousTotal += shard->st.certCache.setByteBudget(perShard);
  }
  return previousTotal;
}

std::size_t SessionTable::certificateCacheApproxBytes() const {
  std::size_t bytes = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    bytes += shard->st.certCache.approxBytes();
  }
  return bytes;
}

std::size_t SessionTable::disassociateRegion(const Geodetic& center,
                                             double radiusM) {
  if (!(radiusM >= 0.0)) {
    throw InvalidArgumentError("disassociateRegion: radius must be >= 0");
  }
  const Vec3 centerEcef = geodeticToEcef(center);
  std::vector<std::size_t> dropped(shards_.size(), 0);
  parallelFor(shards_.size(), 1, [&](std::size_t begin, std::size_t end) {
    for (std::size_t s = begin; s < end; ++s) {
      Shard& shard = *shards_[s];
      MutexLock lock(shard.mu);
      State& st = shard.st;
      for (std::size_t i = 0; i < st.user.size(); ++i) {
        if (st.state[i] == SessionState::Disassociated) continue;
        if (st.siteEcef[i].distanceTo(centerEcef) > radiusM) continue;
        if (st.state[i] == SessionState::Serving &&
            st.servingSat[i] != kNoSatellite) {
          --st.satOccupancy[st.servingSat[i]];
        }
        st.state[i] = SessionState::Disassociated;
        st.servingSat[i] = kNoSatellite;
        st.certCache.invalidate(st.user[i]);
        ++dropped[s];
      }
      // Scanning slots just dropped must not be probed next epoch.
      std::erase_if(st.scanning, [&](std::uint32_t slot) {
        return st.state[slot] == SessionState::Disassociated;
      });
    }
  });
  std::size_t total = 0;
  for (const std::size_t d : dropped) total += d;
  return total;
}

}  // namespace openspace
