// The million-user session plane's state store (paper §2.2 at scale).
//
// Every associated user terminal owns one session: its serving satellite,
// its roaming-certificate handle, and the *next predicted handover time*
// (when the serving satellite drops below the elevation mask). The paper's
// "associate once, then hand over every ~15 s without re-authentication"
// economics only show up when that state persists between epochs — the
// stateless batch paths (associateUsers, per-user HandoverPlanner scans)
// pay the full acquisition cost every epoch for every user.
//
// SessionTable shards sessions by user id into structure-of-arrays shards,
// each guarded by an annotated openspace::Mutex. Inside a shard:
//  * SoA field arrays, one slot per session;
//  * per-satellite occupancy buckets (how many of this shard's sessions
//    each satellite is serving — summed across shards for fleet-level
//    load);
//  * a time-ordered expiry min-heap over (next event time, slot), so an
//    epoch sweep touches only the sessions whose predicted handover falls
//    inside the epoch instead of scanning the whole table;
//  * a byte-budgeted LRU certificate cache (the visited-provider
//    verification results that make a predictive handover a purely local
//    operation — see DESIGN.md §15).
//
// Shard assignment is a pure function of the user id, so a session never
// migrates between shards and the epoch sweep (session/handover_sweep.hpp)
// can fan shards over parallelFor in fixed one-shard chunks with
// bit-identical serial==parallel results.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include <openspace/auth/certificate.hpp>
#include <openspace/core/thread_annotations.hpp>
#include <openspace/geo/geodetic.hpp>
#include <openspace/geo/vec3.hpp>

namespace openspace {

/// Session lifecycle (the table-resident projection of AssociationState:
/// an inserted session is past Authenticating by construction).
enum class SessionState : std::uint8_t {
  Serving,        ///< Associated; serving satellite + predicted expiry known.
  Scanning,       ///< In a coverage hole; re-acquiring on the 10 s grid.
  Disassociated,  ///< Dropped (certificate expiry / regional outage).
};

std::string_view sessionStateName(SessionState s) noexcept;

/// One user entering the table: location plus the roaming-certificate
/// handle its home ISP issued at association time.
struct SessionSeed {
  UserId user = 0;
  Geodetic location;
  double certExpiresAtS = 0.0;
  std::uint64_t certTag = 0;  ///< Certificate::tag — the cached handle.
};

/// One executed predictive handover, in fleet-index terms.
struct SessionEvent {
  UserId user = 0;
  double atS = 0.0;
  std::uint32_t fromSat = 0;  ///< Fleet index (EphemerisService order).
  std::uint32_t toSat = 0;
  double latencyS = 0.0;
};

/// Sentinel fleet index for "no satellite".
inline constexpr std::uint32_t kNoSatellite = 0xFFFFFFFFu;

/// Sharded SoA store of user sessions. All public methods are thread-safe;
/// bulk accessors (size, checksums, occupancy) visit shards in shard order
/// so their results are deterministic. The epoch sweep works directly on
/// shard internals under the shard lock.
class SessionTable {
 public:
  /// `fleetSize` sizes the per-satellite occupancy buckets (fleet indexes
  /// must be < fleetSize); `shardCount` is clamped to >= 1. Memory scales
  /// with shardCount * fleetSize for the buckets — keep shardCount modest
  /// for mega-fleets. Throws InvalidArgumentError for fleetSize == 0.
  explicit SessionTable(std::size_t fleetSize, std::size_t shardCount = 32);
  ~SessionTable();

  SessionTable(const SessionTable&) = delete;
  SessionTable& operator=(const SessionTable&) = delete;

  std::size_t shardCount() const noexcept { return shards_.size(); }
  std::size_t fleetSize() const noexcept { return fleetSize_; }

  /// Simulation clock: every session's state is current as of this time.
  /// Advanced by HandoverSweep::runEpoch; set by the initial seed.
  double clockS() const noexcept { return clockS_; }

  /// Total sessions ever inserted (any state).
  std::size_t size() const;
  /// Sessions currently Serving or Scanning.
  std::size_t activeCount() const;
  /// Serving sessions per satellite (fleet index), summed over shards.
  std::vector<std::uint64_t> perSatelliteOccupancy() const;

  /// Read-only view of one session, for tests and diagnostics.
  struct SessionView {
    SessionState state = SessionState::Disassociated;
    std::uint32_t servingSat = kNoSatellite;
    double nextEventS = 0.0;
    double certExpiresAtS = 0.0;
    std::uint64_t certTag = 0;
  };
  std::optional<SessionView> find(UserId user) const;

  /// FNV-1a fold over every shard's session fields in (shard, slot) order
  /// — bitwise identity of the logical table state. Two tables that went
  /// through the same seed + sweep sequence checksum equal at any thread
  /// count (the serial==parallel gate in bench/bench_session.cpp).
  std::uint64_t stateChecksum() const;

  /// Approximate resident bytes: SoA arrays, heaps, occupancy buckets and
  /// the certificate caches.
  std::size_t approxBytes() const;

  /// Total byte budget of the per-shard certificate caches (split evenly
  /// across shards; same eviction contract as the compiled-index LRUs:
  /// LRU-tail eviction while over budget, newest entry exempt). Returns
  /// the previous total budget; pass 0 to shrink each shard cache to one
  /// entry.
  std::size_t setCertificateCacheByteBudget(std::size_t bytes);
  /// Summed approxBytes of the per-shard certificate caches.
  std::size_t certificateCacheApproxBytes() const;

  /// Drop every active session within `radiusM` (chord distance on the
  /// ECEF sphere) of `center` — the regional ground-station-outage
  /// scenario: the region's users fall back to Disassociated and must
  /// re-associate (HandoverSweep::seed reactivates them). Returns the
  /// number of sessions dropped. Deterministic at any thread count.
  std::size_t disassociateRegion(const Geodetic& center, double radiusM);

 private:
  friend class HandoverSweep;

  /// Expiry-heap entry: min-ordered by (atS, slot). Entries are lazy —
  /// superseded ones are skipped on pop when atS no longer matches the
  /// slot's nextEventS.
  struct HeapEntry {
    double atS = 0.0;
    std::uint32_t slot = 0;
  };

  /// Byte-budgeted LRU of verified certificate tags, one per shard. A hit
  /// means the visited provider already verified this user's roaming
  /// certificate — the handover needs no tag recomputation (a local
  /// operation). Shard-local by construction, so parallel sweeps stay
  /// deterministic.
  class CertificateCache {
   public:
    /// True (and refreshed to most-recent) iff `tag` is cached for `user`.
    bool hit(UserId user, std::uint64_t tag);
    /// Record a verified tag, evicting LRU-tail entries while over budget
    /// (the newest entry is exempt).
    void insert(UserId user, std::uint64_t tag);
    void invalidate(UserId user);
    std::size_t setByteBudget(std::size_t bytes);
    std::size_t approxBytes() const noexcept { return bytes_; }
    std::size_t size() const noexcept { return order_.size(); }

   private:
    struct Entry {
      UserId user = 0;
      std::uint64_t tag = 0;
    };
    static constexpr std::size_t kEntryBytes =
        sizeof(Entry) + 6 * sizeof(void*);  ///< List node + map slot.
    std::size_t byteBudget_ = 1 << 20;
    std::size_t bytes_ = 0;
    /// Most-recent first.
    std::list<Entry> order_;
    std::unordered_map<UserId, std::list<Entry>::iterator> index_;
  };

  /// All per-shard state, guarded as one unit by the shard mutex.
  struct State {
    // SoA session fields, one slot per session.
    std::vector<UserId> user;
    std::vector<Geodetic> site;
    std::vector<Vec3> siteEcef;       ///< Precomputed geodeticToEcef(site).
    std::vector<std::uint32_t> servingSat;  ///< Fleet index or kNoSatellite.
    std::vector<double> nextEventS;   ///< Serving: predicted expiry.
                                      ///< Scanning: next 10 s grid probe.
    std::vector<double> outageFromS;  ///< Scanning: outage accrued up to here.
    std::vector<double> certExpiresAtS;
    std::vector<std::uint64_t> certTag;
    std::vector<SessionState> state;
    std::vector<HeapEntry> heap;             ///< (nextEventS, slot) min-heap.
    std::vector<std::uint32_t> scanning;     ///< Slots in Scanning state.
    std::vector<std::uint64_t> satOccupancy; ///< Per-satellite buckets.
    std::unordered_map<UserId, std::uint32_t> slotOf;
    CertificateCache certCache;
  };

  struct Shard {
    mutable Mutex mu;
    State st OPENSPACE_GUARDED_BY(mu);
  };

  std::uint32_t shardOf(UserId user) const noexcept;

  static void heapPush(std::vector<HeapEntry>& heap, HeapEntry e);
  static HeapEntry heapPop(std::vector<HeapEntry>& heap);

  std::size_t fleetSize_;
  std::vector<std::unique_ptr<Shard>> shards_;
  double clockS_ = 0.0;  ///< Written only by the coordinating sweep thread.
  bool seeded_ = false;  ///< First seed sets the clock; later ones obey it.
};

}  // namespace openspace
