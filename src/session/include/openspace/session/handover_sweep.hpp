// Batched predictive handover sweeps over a SessionTable.
//
// The per-user path (HandoverPlanner + simulateHandovers) re-derives
// everything from scratch each epoch: a snapshot + footprint compile per
// decision time, a cold visibility scan per candidate, and a full
// re-acquisition per user per epoch — O(users x candidates x horizon
// steps) even when nothing changes. HandoverSweep replaces that with an
// epoch kernel over persistent session state:
//
//  * one ConstellationSnapshot + FootprintIndex2 compile per epoch (the
//    index carries a motion margin sized so its candidate sets stay
//    conservative supersets at every event time inside the epoch);
//  * the per-shard expiry heaps select exactly the sessions whose
//    predicted handover falls inside the epoch — no full-table scan;
//  * visibility searches run on one warm-startable SatelliteSweep per
//    shard through HandoverPlanner::visibilityEndWith, the planner's own
//    search core;
//  * certificate verification results are cached per shard, so a
//    steady-state handover is a purely local operation (no tag
//    recomputation, never a home-ISP round trip — paper §2.2).
//
// Equivalence contract: with SeedMode::Planner and non-expiring
// certificates, the concatenated per-user event streams are *bit-for-bit*
// the HandoverTimeline events simulateHandovers(planner, user, t0, T,
// mode) produces, for any partition of [t0, T] into epochs — the legacy
// path stays in place verbatim as the executable spec, and
// tests/test_session.cpp pins the equivalence property. Shards are fanned
// over parallelFor in fixed one-shard chunks; all sweep state is
// shard-local, so serial and parallel runs are bit-identical
// (hard-gated in bench/bench_session.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include <openspace/handover/handover.hpp>
#include <openspace/session/session_table.hpp>

namespace openspace {

class FleetEphemeris;
class FootprintIndex2;

/// Epoch-kernel configuration. The defaults reproduce the legacy
/// simulateHandovers semantics (3600 s visibility horizon, predictive
/// make-before-break).
struct SweepConfig {
  double minElevationRad = 0.1745;  ///< ~10 deg.
  HandoverMode mode = HandoverMode::Predictive;
  ReAssociationCost reassocCost{};
  /// Visibility search bound per leg; must stay at the planner default
  /// for event streams to match the legacy path.
  double horizonS = 3'600.0;
  /// Disassociate a session whose certificate is expired at the moment a
  /// successor would be adopted (the AssociationAgent::adoptSuccessor
  /// expiry rule). Disable for legacy-equivalence runs with finite
  /// certificate lifetimes.
  bool dropOnCertExpiry = true;
};

/// Per-epoch sweep outcome. Scalar totals are summed over shards in shard
/// order; the checksum folds per-shard event streams in shard order —
/// both bit-identical at any thread count.
struct EpochStats {
  double t0S = 0.0;
  double t1S = 0.0;
  std::size_t sessionsTouched = 0;  ///< Sessions whose chain ran this epoch.
  std::size_t handovers = 0;
  std::size_t coverageHoles = 0;    ///< Sessions that entered Scanning.
  std::size_t reacquisitions = 0;   ///< Scanning sessions that re-acquired.
  std::size_t certExpiries = 0;     ///< Sessions dropped on expired certs.
  std::size_t certCacheHits = 0;
  std::size_t certCacheMisses = 0;
  double outageS = 0.0;             ///< Handover signaling + hole time.
  std::uint64_t eventChecksum = 0;  ///< FNV over events in (shard, pop) order.
};

/// How HandoverSweep::seed picks each user's first serving satellite.
enum class SeedMode {
  /// bestSatelliteAt(user, t0): longest-remaining-visibility — exactly the
  /// initial acquisition of simulateHandovers (the equivalence mode).
  Planner,
  /// closestVisible(user): the §2.2 association rule — exactly the
  /// satellite associateUsers picks (the production mode).
  ClosestAssociation,
};

class HandoverSweep {
 public:
  /// Captures the ephemeris fleet (publication order) at construction.
  /// Throws InvalidArgumentError for an elevation mask outside [0, pi/2)
  /// or an empty fleet.
  HandoverSweep(const EphemerisService& ephemeris, SweepConfig cfg);

  /// Seed sessions into the table at `t0S`: pick each user's serving
  /// satellite (per `mode`), predict its visibility end, and insert the
  /// session — associateUsers' batched selection feeding per-user state.
  /// Users with no visible satellite enter Scanning on the legacy 10 s
  /// re-acquisition grid. A seed whose user already has a Disassociated
  /// session re-associates in place (new certificate handle); an active
  /// duplicate throws InvalidArgumentError. The first seed sets the table
  /// clock; later seeds must arrive at the current clock (epoch
  /// boundaries). Deterministic at any thread count.
  void seed(SessionTable& table, const std::vector<SessionSeed>& seeds,
            double t0S, SeedMode mode) const;

  /// Advance every session from table.clockS() to `t1S`, executing every
  /// predicted handover, coverage-hole scan and certificate check that
  /// falls inside the epoch. Events append to `eventsOut` (if non-null) in
  /// (shard, pop) order — the checksum's order. Throws
  /// InvalidArgumentError unless t1S > table.clockS().
  EpochStats runEpoch(SessionTable& table, double t1S,
                      std::vector<SessionEvent>* eventsOut = nullptr) const;

  const SweepConfig& config() const noexcept { return cfg_; }
  const std::vector<OrbitalElements>& fleet() const noexcept {
    return elements_;
  }
  /// Upper bound on any satellite's angular rate as seen from the Earth
  /// frame (orbital rate at perigee + Earth rotation), rad/s — sizes the
  /// epoch index's motion margin.
  double maxAngularRateRadPerS() const noexcept { return maxAngularRateRadPerS_; }

 private:
  struct ShardStats;

  /// Index of the best satellite at `tSeconds` for the site — candidates
  /// from the margined epoch index, the exact planner predicate and
  /// first-wins tie order, visibility ends through `sweep`. Bit-identical
  /// to HandoverPlanner::bestSatelliteAt. kNoSatellite when none visible.
  std::uint32_t bestAt(const FootprintIndex2& index,
                       const FleetEphemeris& fleet, const Vec3& siteEcef,
                       const Geodetic& site, double tSeconds,
                       std::uint32_t excludeSat, SatelliteSweep& sweep,
                       std::vector<std::uint32_t>& scratch) const;

  /// bestAt, additionally returning the winner's visibility end through
  /// `bestUntil` (the new leg's predicted expiry — saves re-searching it).
  std::uint32_t bestAtWithUntil(const FootprintIndex2& index,
                                const FleetEphemeris& fleet,
                                const Vec3& siteEcef, const Geodetic& site,
                                double tSeconds, std::uint32_t excludeSat,
                                SatelliteSweep& sweep,
                                std::vector<std::uint32_t>& scratch,
                                double& bestUntil) const;

  const EphemerisService& ephemeris_;
  SweepConfig cfg_;
  HandoverPlanner planner_;
  std::vector<OrbitalElements> elements_;
  std::uint64_t elementsHash_ = 0;
  double maxAngularRateRadPerS_ = 0.0;
};

}  // namespace openspace
