#include <openspace/session/handover_sweep.hpp>

#include <algorithm>
#include <cmath>

#include <openspace/concurrency/parallel.hpp>
#include <openspace/core/hash.hpp>
#include <openspace/coverage/footprint_index.hpp>
#include <openspace/geo/error.hpp>
#include <openspace/geo/units.hpp>
#include <openspace/geo/wgs84.hpp>
#include <openspace/orbit/propagation_batch.hpp>
#include <openspace/orbit/snapshot.hpp>
#include <openspace/orbit/visibility.hpp>

namespace openspace {

namespace {

/// Seeds per parallelFor chunk in the seeding pre-pass. Fixed boundaries +
/// per-seed output slots keep serial and parallel seeding bit-identical.
constexpr std::size_t kSeedChunk = 512;

/// The legacy re-acquisition probe grid (simulateHandovers' 10 s scan).
constexpr double kScanStepS = 10.0;

/// Extra slack on the epoch index's motion margin beyond the rigorous
/// drift bound — absorbs rounding in the bound's own evaluation.
constexpr double kMarginSlackRad = 1e-6;

/// Signaling latency of one predictive handover — the expression of the
/// legacy simulateHandovers path, with the fleet positions coming from the
/// compiled ephemeris (bit-identical to the scalar positionEci the legacy
/// path calls).
double predictiveLatencyS(const FleetEphemeris& fleet, const Vec3& userEcef,
                          std::uint32_t from, std::uint32_t to,
                          double tSeconds) {
  const double downS =
      userEcef.distanceTo(eciToEcef(fleet.positionAt(from, tSeconds),
                                    tSeconds)) /
      kSpeedOfLightMps;
  const double upS =
      userEcef.distanceTo(eciToEcef(fleet.positionAt(to, tSeconds),
                                    tSeconds)) /
      kSpeedOfLightMps;
  return downS + 2.0 * upS;
}

}  // namespace

/// Per-shard epoch accumulator; folded in shard order after the parallel
/// phase so every total and the event checksum are thread-count-invariant.
struct HandoverSweep::ShardStats {
  std::size_t touched = 0;
  std::size_t handovers = 0;
  std::size_t holes = 0;
  std::size_t reacquisitions = 0;
  std::size_t certExpiries = 0;
  std::size_t certHits = 0;
  std::size_t certMisses = 0;
  double outageS = 0.0;
  std::uint64_t checksum = kFnvOffsetBasis;
  std::vector<SessionEvent> events;
};

HandoverSweep::HandoverSweep(const EphemerisService& ephemeris, SweepConfig cfg)
    : ephemeris_(ephemeris),
      cfg_(cfg),
      planner_(ephemeris, cfg.minElevationRad) {
  const auto& sats = ephemeris.satellites();
  if (sats.empty()) {
    throw InvalidArgumentError("HandoverSweep: empty fleet");
  }
  elements_.reserve(sats.size());
  for (const SatelliteId sid : sats) {
    elements_.push_back(ephemeris.record(sid).elements);
  }
  elementsHash_ = constellationHash(elements_);
  // Fleet-wide angular-rate bound: the orbital rate peaks at perigee at
  // n * sqrt(1+e) / (1-e)^{3/2}; the observer's ECI direction adds the
  // Earth rotation rate. Scales the epoch index's candidate motion margin.
  double maxOrbital = 0.0;
  for (const OrbitalElements& el : elements_) {
    const double n = el.meanMotionRadPerS();
    const double rate = n * std::sqrt(1.0 + el.eccentricity) /
                        std::pow(1.0 - el.eccentricity, 1.5);
    maxOrbital = std::max(maxOrbital, rate);
  }
  maxAngularRateRadPerS_ = maxOrbital + wgs84::kEarthRotationRadPerS;
}

std::uint32_t HandoverSweep::bestAt(const FootprintIndex2& index,
                                    const FleetEphemeris& fleet,
                                    const Vec3& siteEcef, const Geodetic& site,
                                    double tSeconds, std::uint32_t excludeSat,
                                    SatelliteSweep& sweep,
                                    std::vector<std::uint32_t>& scratch) const {
  double bestUntil = -1.0;
  return bestAtWithUntil(index, fleet, siteEcef, site, tSeconds, excludeSat,
                         sweep, scratch, bestUntil);
}

std::uint32_t HandoverSweep::bestAtWithUntil(
    const FootprintIndex2& index, const FleetEphemeris& fleet,
    const Vec3& siteEcef, const Geodetic& site, double tSeconds,
    std::uint32_t excludeSat, SatelliteSweep& sweep,
    std::vector<std::uint32_t>& scratch, double& bestUntil) const {
  // The planner's bestSatelliteAt, fed from the epoch index: the index's
  // candidate set is a (margined) superset of the per-call index the
  // planner compiles, and both re-test with the exact elevation predicate
  // in ascending order with strict first-wins — so the winner and its
  // visibility end are bit-identical (pinned in tests/test_session.cpp).
  scratch.clear();
  index.forEachGroundCandidate(
      siteEcef, [&](std::uint32_t i) { scratch.push_back(i); });
  std::sort(scratch.begin(), scratch.end());
  std::uint32_t best = kNoSatellite;
  bestUntil = -1.0;
  for (const std::uint32_t i : scratch) {
    if (i == excludeSat) continue;
    if (elevationFrom(fleet.positionAt(i, tSeconds), site, tSeconds) <
        cfg_.minElevationRad) {
      continue;
    }
    sweep.reset(elements_[i]);
    const double until =
        planner_.visibilityEndWith(sweep, site, tSeconds, cfg_.horizonS);
    if (until > bestUntil) {
      bestUntil = until;
      best = i;
    }
  }
  return best;
}

void HandoverSweep::seed(SessionTable& table,
                         const std::vector<SessionSeed>& seeds, double t0S,
                         SeedMode mode) const {
  if (table.fleetSize() != elements_.size()) {
    throw InvalidArgumentError("seed: table fleet size != sweep fleet size");
  }
  if (table.seeded_ && t0S != table.clockS_) {
    throw InvalidArgumentError("seed: t0S must match the table clock");
  }
  // Pre-pass: the serving pick and its predicted visibility end, per seed,
  // in fixed chunks — one snapshot + exact (margin-0) index at t0, exactly
  // what the legacy initial acquisition compiles.
  const auto snap = SnapshotCache::global().at(elements_, t0S);
  const auto index = FootprintIndex2::compiled(snap, cfg_.minElevationRad);
  const auto fleet = FleetEphemeris::compiled(elements_, elementsHash_);
  std::vector<std::uint32_t> serving(seeds.size(), kNoSatellite);
  std::vector<double> untilS(seeds.size(), 0.0);
  parallelFor(seeds.size(), kSeedChunk,
              [&](std::size_t begin, std::size_t end) {
                SatelliteSweep sweep;
                std::vector<std::uint32_t> scratch;
                for (std::size_t u = begin; u < end; ++u) {
                  const Vec3 siteEcef = geodeticToEcef(seeds[u].location);
                  if (mode == SeedMode::Planner) {
                    serving[u] = bestAtWithUntil(
                        *index, *fleet, siteEcef, seeds[u].location, t0S,
                        kNoSatellite, sweep, scratch, untilS[u]);
                  } else {
                    const auto closest = index->closestVisible(siteEcef);
                    if (closest) {
                      serving[u] = static_cast<std::uint32_t>(*closest);
                      sweep.reset(elements_[serving[u]]);
                      untilS[u] = planner_.visibilityEndWith(
                          sweep, seeds[u].location, t0S, cfg_.horizonS);
                    }
                  }
                }
              });
  // Bucket seeds per shard in seed order, then insert shard-parallel: the
  // per-shard insertion order (and so slot numbering, heap tie-breaking
  // and event order) is a pure function of the seed list.
  std::vector<std::vector<std::uint32_t>> byShard(table.shardCount());
  for (std::size_t u = 0; u < seeds.size(); ++u) {
    byShard[table.shardOf(seeds[u].user)].push_back(
        static_cast<std::uint32_t>(u));
  }
  parallelFor(table.shardCount(), 1, [&](std::size_t begin, std::size_t end) {
    for (std::size_t s = begin; s < end; ++s) {
      SessionTable::Shard& shard = *table.shards_[s];
      MutexLock lock(shard.mu);
      SessionTable::State& st = shard.st;
      for (const std::uint32_t u : byShard[s]) {
        const SessionSeed& seed = seeds[u];
        std::uint32_t slot;
        const auto it = st.slotOf.find(seed.user);
        if (it != st.slotOf.end()) {
          slot = it->second;
          if (st.state[slot] != SessionState::Disassociated) {
            throw InvalidArgumentError("seed: user already has a session");
          }
          st.site[slot] = seed.location;
          st.siteEcef[slot] = geodeticToEcef(seed.location);
        } else {
          slot = static_cast<std::uint32_t>(st.user.size());
          st.user.push_back(seed.user);
          st.site.push_back(seed.location);
          st.siteEcef.push_back(geodeticToEcef(seed.location));
          st.servingSat.push_back(kNoSatellite);
          st.nextEventS.push_back(0.0);
          st.outageFromS.push_back(0.0);
          st.certExpiresAtS.push_back(0.0);
          st.certTag.push_back(0);
          st.state.push_back(SessionState::Disassociated);
          st.slotOf.emplace(seed.user, slot);
        }
        st.certExpiresAtS[slot] = seed.certExpiresAtS;
        st.certTag[slot] = seed.certTag;
        if (serving[u] != kNoSatellite) {
          st.state[slot] = SessionState::Serving;
          st.servingSat[slot] = serving[u];
          st.nextEventS[slot] = untilS[u];
          st.outageFromS[slot] = 0.0;
          ++st.satOccupancy[serving[u]];
          SessionTable::heapPush(st.heap,
                                 SessionTable::HeapEntry{untilS[u], slot});
        } else {
          // Legacy initial acquisition: the t0 probe failed, the next one
          // runs a step later on the 10 s grid.
          st.state[slot] = SessionState::Scanning;
          st.servingSat[slot] = kNoSatellite;
          st.nextEventS[slot] = t0S + kScanStepS;
          st.outageFromS[slot] = t0S;
          st.scanning.push_back(slot);
        }
      }
    }
  });
  if (!table.seeded_) {
    table.clockS_ = t0S;
    table.seeded_ = true;
  }
}

EpochStats HandoverSweep::runEpoch(SessionTable& table, double t1S,
                                   std::vector<SessionEvent>* eventsOut) const {
  if (table.fleetSize() != elements_.size()) {
    throw InvalidArgumentError(
        "runEpoch: table fleet size != sweep fleet size");
  }
  const double t0S = table.clockS_;
  if (!(t1S > t0S)) {
    throw InvalidArgumentError("runEpoch: t1S must be > table clock");
  }
  // One snapshot + one margined footprint index serve every event in the
  // epoch: the index is compiled at the epoch midpoint, with the pruning
  // caps widened by the worst-case angular drift to either epoch edge —
  // candidate sets stay conservative supersets at every event time.
  const double midS = t0S + 0.5 * (t1S - t0S);
  const double marginRad =
      maxAngularRateRadPerS_ * (0.5 * (t1S - t0S) + 1e-3) + kMarginSlackRad;
  const auto snap = SnapshotCache::global().at(elements_, midS);
  const auto index =
      FootprintIndex2::compiled(snap, cfg_.minElevationRad, marginRad);
  const auto fleet = FleetEphemeris::compiled(elements_, elementsHash_);

  std::vector<ShardStats> stats(table.shardCount());
  parallelFor(table.shardCount(), 1, [&](std::size_t begin, std::size_t end) {
    for (std::size_t s = begin; s < end; ++s) {
      SessionTable::Shard& shard = *table.shards_[s];
      MutexLock lock(shard.mu);
      SessionTable::State& st = shard.st;
      ShardStats& out = stats[s];
      const bool record = eventsOut != nullptr;
      SatelliteSweep sweep;
      std::vector<std::uint32_t> scratch;
      std::vector<std::uint32_t> stillScanning;

      // One session's whole epoch: run its leg chain until it parks —
      // expiry beyond the epoch (back on the heap), an unresolved
      // coverage-hole scan (carried to the next epoch), or a dropped
      // session. The bodies mirror the legacy simulateHandovers loop
      // clause for clause.
      const auto processSession = [&](std::uint32_t slot) {
        ++out.touched;
        for (;;) {
          if (st.state[slot] == SessionState::Scanning) {
            double gridS = st.nextEventS[slot];
            std::uint32_t found = kNoSatellite;
            double foundUntil = 0.0;
            while (gridS < t1S) {
              found = bestAtWithUntil(*index, *fleet, st.siteEcef[slot],
                                      st.site[slot], gridS, kNoSatellite,
                                      sweep, scratch, foundUntil);
              if (found != kNoSatellite) break;
              gridS += kScanStepS;
            }
            if (found == kNoSatellite) {
              // Park: outage accrues to the epoch edge, the probe grid
              // position survives to the next epoch.
              out.outageS += t1S - st.outageFromS[slot];
              st.outageFromS[slot] = t1S;
              st.nextEventS[slot] = gridS;
              // det-waiver: declared inside this shard's chunk body, local
              stillScanning.push_back(slot);
              return;
            }
            out.outageS += gridS - st.outageFromS[slot];
            ++out.reacquisitions;
            st.state[slot] = SessionState::Serving;
            st.servingSat[slot] = found;
            st.nextEventS[slot] = foundUntil;
            ++st.satOccupancy[found];
            continue;
          }
          const double endS = st.nextEventS[slot];
          if (endS >= t1S) {
            SessionTable::heapPush(st.heap,
                                   SessionTable::HeapEntry{endS, slot});
            return;
          }
          // Handover due at endS: successor picked just before the mask
          // crossing, serving satellite excluded — the legacy rule.
          const std::uint32_t from = st.servingSat[slot];
          double succUntil = 0.0;
          const std::uint32_t succ = bestAtWithUntil(
              *index, *fleet, st.siteEcef[slot], st.site[slot], endS - 1e-3,
              from, sweep, scratch, succUntil);
          if (succ == kNoSatellite) {
            // Coverage hole: re-acquire on the 10 s grid from the mask
            // crossing (the first probe runs at endS itself).
            ++out.holes;
            --st.satOccupancy[from];
            st.state[slot] = SessionState::Scanning;
            st.servingSat[slot] = kNoSatellite;
            st.nextEventS[slot] = endS;
            st.outageFromS[slot] = endS;
            continue;
          }
          if (cfg_.dropOnCertExpiry &&
              endS >= st.certExpiresAtS[slot]) {
            // The adoptSuccessor expiry rule: an expired roaming
            // certificate cannot ride a predictive handover — the session
            // drops and must re-associate through RADIUS.
            ++out.certExpiries;
            --st.satOccupancy[from];
            st.state[slot] = SessionState::Disassociated;
            st.servingSat[slot] = kNoSatellite;
            st.certCache.invalidate(st.user[slot]);
            return;
          }
          const double latencyS =
              cfg_.mode == HandoverMode::Predictive
                  ? predictiveLatencyS(*fleet, st.siteEcef[slot], from, succ,
                                       endS)
                  : cfg_.reassocCost.beaconPeriodS / 2.0 +
                        cfg_.reassocCost.authRttS;
          // Certificate check at the successor: a cache hit means the
          // visited provider already verified this user's roaming
          // certificate — nothing to recompute, the handover is local.
          if (st.certCache.hit(st.user[slot], st.certTag[slot])) {
            ++out.certHits;
          } else {
            ++out.certMisses;
            st.certCache.insert(st.user[slot], st.certTag[slot]);
          }
          ++out.handovers;
          out.outageS += latencyS;
          out.checksum = fnv1a(out.checksum, st.user[slot]);
          out.checksum = fnv1a(out.checksum, bitsOf(endS));
          out.checksum = fnv1a(out.checksum, from);
          out.checksum = fnv1a(out.checksum, succ);
          out.checksum = fnv1a(out.checksum, bitsOf(latencyS));
          if (record) {
            out.events.push_back(
                SessionEvent{st.user[slot], endS, from, succ, latencyS});
          }
          --st.satOccupancy[from];
          ++st.satOccupancy[succ];
          st.servingSat[slot] = succ;
          // Next leg starts once the switch signaling completes.
          const double legStartS = endS + latencyS;
          sweep.reset(elements_[succ]);
          st.nextEventS[slot] = planner_.visibilityEndWith(
              sweep, st.site[slot], legStartS, cfg_.horizonS);
        }
      };

      // Scanning sessions first (list order), then the expiry heap in
      // (time, slot) order — both deterministic, and sessions are
      // independent, so the split is a presentation order, not a
      // semantics choice.
      std::vector<std::uint32_t> toScan;
      toScan.swap(st.scanning);
      for (const std::uint32_t slot : toScan) {
        if (st.state[slot] != SessionState::Scanning) continue;
        processSession(slot);
      }
      while (!st.heap.empty() && st.heap.front().atS < t1S) {
        const SessionTable::HeapEntry e = SessionTable::heapPop(st.heap);
        // Lazy deletion: superseded or dead entries fall through.
        if (st.state[e.slot] != SessionState::Serving ||
            st.nextEventS[e.slot] != e.atS) {
          continue;
        }
        processSession(e.slot);
      }
      st.scanning.swap(stillScanning);
    }
  });

  EpochStats total;
  total.t0S = t0S;
  total.t1S = t1S;
  std::uint64_t h = kFnvOffsetBasis;
  for (std::size_t s = 0; s < stats.size(); ++s) {
    const ShardStats& sh = stats[s];
    total.sessionsTouched += sh.touched;
    total.handovers += sh.handovers;
    total.coverageHoles += sh.holes;
    total.reacquisitions += sh.reacquisitions;
    total.certExpiries += sh.certExpiries;
    total.certCacheHits += sh.certHits;
    total.certCacheMisses += sh.certMisses;
    total.outageS += sh.outageS;
    h = fnv1a(h, sh.checksum);
    if (eventsOut != nullptr) {
      eventsOut->insert(eventsOut->end(), sh.events.begin(), sh.events.end());
    }
  }
  total.eventChecksum = h;
  table.clockS_ = t1S;
  return total;
}

}  // namespace openspace
