#include <openspace/geo/geodetic.hpp>

#include <algorithm>
#include <cmath>
#include <numbers>

#include <openspace/geo/error.hpp>
#include <openspace/geo/units.hpp>
#include <openspace/geo/wgs84.hpp>

namespace openspace {

namespace {
constexpr double kPi = std::numbers::pi;
}  // namespace

Geodetic Geodetic::fromDegrees(double latDeg, double lonDeg, double altM) {
  return Geodetic{deg2rad(latDeg), deg2rad(lonDeg), altM};
}

Vec3 geodeticToEcef(const Geodetic& g) {
  if (g.latitudeRad < -kPi / 2.0 - 1e-12 || g.latitudeRad > kPi / 2.0 + 1e-12) {
    throw InvalidArgumentError("geodeticToEcef: latitude out of [-pi/2, pi/2]");
  }
  const double sinLat = std::sin(g.latitudeRad);
  const double cosLat = std::cos(g.latitudeRad);
  // Prime-vertical radius of curvature.
  const double n = wgs84::kSemiMajorAxisM /
                   std::sqrt(1.0 - wgs84::kEccentricitySquared * sinLat * sinLat);
  return {(n + g.altitudeM) * cosLat * std::cos(g.longitudeRad),
          (n + g.altitudeM) * cosLat * std::sin(g.longitudeRad),
          (n * (1.0 - wgs84::kEccentricitySquared) + g.altitudeM) * sinLat};
}

Geodetic ecefToGeodetic(const Vec3& ecef) {
  const double a = wgs84::kSemiMajorAxisM;
  const double b = wgs84::kSemiMinorAxisM;
  const double e2 = wgs84::kEccentricitySquared;
  const double p = std::hypot(ecef.x, ecef.y);

  // Bowring's initial guess.
  const double ep2 = (a * a - b * b) / (b * b);
  const double theta = std::atan2(ecef.z * a, p * b);
  double lat = std::atan2(ecef.z + ep2 * b * std::pow(std::sin(theta), 3),
                          p - e2 * a * std::pow(std::cos(theta), 3));

  // Two fixed-point refinements: recompute N and altitude from the current
  // latitude estimate. Converges to sub-mm for |alt| < a few thousand km.
  double n = a;
  double alt = 0.0;
  for (int i = 0; i < 2; ++i) {
    const double sinLat = std::sin(lat);
    n = a / std::sqrt(1.0 - e2 * sinLat * sinLat);
    alt = p / std::cos(lat) - n;
    lat = std::atan2(ecef.z, p * (1.0 - e2 * n / (n + alt)));
  }
  const double sinLat = std::sin(lat);
  n = a / std::sqrt(1.0 - e2 * sinLat * sinLat);
  // Near the poles p/cos(lat) blows up; use the Z-based altitude there.
  const double cosLat = std::cos(lat);
  if (std::abs(cosLat) > 1e-8) {
    alt = p / cosLat - n;
  } else {
    alt = std::abs(ecef.z) - b;
  }
  return {lat, std::atan2(ecef.y, ecef.x), alt};
}

Vec3 eciToEcef(const Vec3& eci, double tSeconds) {
  // ECEF rotates by +omega*t about Z relative to ECI, so the coordinate
  // transform applies a -omega*t rotation to the vector components.
  const double ang = -wgs84::kEarthRotationRadPerS * tSeconds;
  const double c = std::cos(ang);
  const double s = std::sin(ang);
  return {c * eci.x - s * eci.y, s * eci.x + c * eci.y, eci.z};
}

Vec3 ecefToEci(const Vec3& ecef, double tSeconds) {
  const double ang = wgs84::kEarthRotationRadPerS * tSeconds;
  const double c = std::cos(ang);
  const double s = std::sin(ang);
  return {c * ecef.x - s * ecef.y, s * ecef.x + c * ecef.y, ecef.z};
}

double centralAngleRad(const Geodetic& a, const Geodetic& b) {
  // Haversine formulation: numerically stable for small separations.
  const double dLat = b.latitudeRad - a.latitudeRad;
  const double dLon = b.longitudeRad - a.longitudeRad;
  const double sinDLat = std::sin(dLat / 2.0);
  const double sinDLon = std::sin(dLon / 2.0);
  const double h = sinDLat * sinDLat +
                   std::cos(a.latitudeRad) * std::cos(b.latitudeRad) * sinDLon * sinDLon;
  return 2.0 * std::asin(std::min(1.0, std::sqrt(h)));
}

double greatCircleDistanceM(const Geodetic& a, const Geodetic& b) {
  return wgs84::kMeanRadiusM * centralAngleRad(a, b);
}

double elevationAngleRad(const Vec3& observer, const Vec3& target) {
  const Vec3 up = observer.normalized();  // local vertical (spherical model)
  const Vec3 losDir = (target - observer).normalized();
  return kPi / 2.0 - angleBetween(up, losDir);
}

double slantRangeM(const Vec3& a, const Vec3& b) { return a.distanceTo(b); }

bool lineOfSightClear(const Vec3& a, const Vec3& b, double clearanceM) {
  const double blockRadius = wgs84::kMeanRadiusM + clearanceM;
  const Vec3 d = b - a;
  const double len2 = d.normSquared();
  if (len2 == 0.0) return a.norm() >= blockRadius;
  // Closest point on segment AB to the Earth's center (origin).
  const double t = std::clamp(-a.dot(d) / len2, 0.0, 1.0);
  const Vec3 closest = a + d * t;
  return closest.norm() >= blockRadius;
}

double angleBetween(const Vec3& a, const Vec3& b) {
  const double denom = a.norm() * b.norm();
  if (denom == 0.0) {
    throw InvalidArgumentError("angleBetween: zero-length vector");
  }
  const double c = std::clamp(a.dot(b) / denom, -1.0, 1.0);
  return std::acos(c);
}

}  // namespace openspace
