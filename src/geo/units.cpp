#include <openspace/geo/units.hpp>

#include <cmath>

#include <openspace/geo/error.hpp>

namespace openspace {

double wattsToDbw(double w) {
  if (w <= 0.0) throw InvalidArgumentError("wattsToDbw: power must be > 0");
  return 10.0 * std::log10(w);
}

double dbwToWatts(double dbw) { return std::pow(10.0, dbw / 10.0); }

double wattsToDbm(double w) { return wattsToDbw(w) + 30.0; }

double dbmToWatts(double dbm) { return dbwToWatts(dbm - 30.0); }

double ratioToDb(double ratio) {
  if (ratio <= 0.0) throw InvalidArgumentError("ratioToDb: ratio must be > 0");
  return 10.0 * std::log10(ratio);
}

double dbToRatio(double db) { return std::pow(10.0, db / 10.0); }

}  // namespace openspace
