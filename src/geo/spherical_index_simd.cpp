// Portable lanes instantiation of the cell-mapping kernel + runtime
// dispatch (the propagation kernel's pattern, see
// orbit/propagation_simd.cpp).
#include <openspace/geo/spherical_index_simd.hpp>

#include <openspace/core/simd_lanes.hpp>

#include "spherical_index_simd_lanes.hpp"

namespace openspace::simd {

void cellIndicesScalar4(const Vec3* dirs, std::uint32_t* outCells,
                        std::size_t bands, std::size_t sectors,
                        std::size_t begin, std::size_t end) {
  cellIndicesLanes<ScalarOps>(dirs, outCells, bands, sectors, begin, end);
}

bool avx2CellKernelBuilt() noexcept;  // defined in spherical_index_simd_avx2.cpp

bool avx2CellKernelAvailable() noexcept {
  return avx2CellKernelBuilt() && simd_detail::cpuSupportsAvx2();
}

SimdLevel cellKernelLevel() noexcept {
  return activeSimdLevel() == SimdLevel::Avx2 && avx2CellKernelAvailable()
             ? SimdLevel::Avx2
             : SimdLevel::Scalar4;
}

void cellIndices(SimdLevel level, const Vec3* dirs, std::uint32_t* outCells,
                 std::size_t bands, std::size_t sectors, std::size_t begin,
                 std::size_t end) {
  if (level == SimdLevel::Avx2 && avx2CellKernelAvailable()) {
    cellIndicesAvx2(dirs, outCells, bands, sectors, begin, end);
  } else {
    cellIndicesScalar4(dirs, outCells, bands, sectors, begin, end);
  }
}

}  // namespace openspace::simd
