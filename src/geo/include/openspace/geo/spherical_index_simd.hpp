// Vectorized batch cell mapping for SphericalCapIndex.
//
// The cap-index query hot loops (the Monte-Carlo coverage sweeps, the
// million-user association path) spend a measurable slice of every sample
// in cellIndexOf: band from z, sector from the trig-free pseudo-angle of
// (x, y). That map uses ONLY exactly-rounded IEEE operations — add, mul,
// div, abs, sign transfer, ordered compares, truncation — so unlike the
// propagation kernel (whose polynomial trig merely tracks libm within
// ULPs) the vector kernel here is *bit-identical* to the scalar member
// functions: outCells[i] == cellIndexOf(dirs[i]) for every input,
// including NaN and zero vectors. The scalar expressions are also immune
// to fma contraction (every fusable product multiplies by an exact 0.0 /
// 1.0 / 2.0 scale), so the identity holds regardless of how callers'
// translation units are compiled.
//
// Dispatch follows the propagation kernel's convention
// (core/simd.hpp): AVX2 when compiled in and the CPU reports AVX2+FMA,
// the portable 4-lane scalar emulation otherwise; OPENSPACE_SIMD=scalar
// forces the portable path. tests/test_simd.cpp pins the two
// instantiations bit-for-bit against each other and against the scalar
// spec.
#pragma once

#include <cstddef>
#include <cstdint>

#include <openspace/core/simd.hpp>
#include <openspace/geo/vec3.hpp>

namespace openspace::simd {

/// True when the AVX2 instantiation was compiled in AND this CPU supports
/// AVX2+FMA.
bool avx2CellKernelAvailable() noexcept;

/// The level cellIndices dispatches to under the process-wide policy.
SimdLevel cellKernelLevel() noexcept;

/// outCells[i] = bandOf(dirs[i].z) * sectors + sectorOf(dirs[i].x,
/// dirs[i].y) for i in [begin, end) — bit-identical to
/// SphericalCapIndex::cellIndexOf over a (bands x sectors) grid. Requires
/// bands >= 1, sectors >= 1 and bands * sectors <= 2^31.
void cellIndices(SimdLevel level, const Vec3* dirs, std::uint32_t* outCells,
                 std::size_t bands, std::size_t sectors, std::size_t begin,
                 std::size_t end);

/// The two instantiations, exposed for the bit-identity property tests.
void cellIndicesScalar4(const Vec3* dirs, std::uint32_t* outCells,
                        std::size_t bands, std::size_t sectors,
                        std::size_t begin, std::size_t end);
void cellIndicesAvx2(const Vec3* dirs, std::uint32_t* outCells,
                     std::size_t bands, std::size_t sectors, std::size_t begin,
                     std::size_t end);

}  // namespace openspace::simd
