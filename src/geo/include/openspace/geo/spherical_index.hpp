// Cell-grid spatial index over spherical caps.
//
// Every coverage / visibility question in the library reduces to "which of
// N spherical caps contain this direction?": a satellite footprint is a cap
// around the sub-satellite direction, a ground user sees exactly the
// satellites whose (elevation-dependent) caps contain the user direction.
// The brute answer tests all N caps per query; the Figure-2(c) Monte-Carlo
// sweep and the million-user association path ask millions of such queries
// per timestep.
//
// SphericalCapIndex tiles the unit sphere into equal-z latitude bands
// (equal-z slabs are equal-area, so uniformly sampled query points spread
// evenly over bands) crossed with uniform longitude sectors, and registers
// each cap in every cell its (conservatively padded) footprint touches.
// All the trigonometry happens at build time; a stabbing query is two
// floor operations — the band from the direction's z, the sector from a
// trig-free monotone pseudo-angle of (x, y), both branchless so the hot
// loops never stall on mispredicted sign tests — followed by a scan of one
// precomputed candidate list. With cells a small fraction of the mean cap
// radius the list holds O(true candidates) entries, so callers that
// early-exit (any cover? count to k?) typically touch one or two caps per
// query; callers that can prove a whole-cell property once (see
// cellCornerDirs) skip the scan entirely.
//
// The index is *conservative by construction*: `forEachCandidate` visits a
// superset of the caps containing the query direction (never a subset —
// registration windows are padded outward, queries are not). Callers
// re-test each candidate with their own exact predicate, which is what
// keeps the indexed paths bit-for-bit identical to the brute-force
// executable specs (see DESIGN.md §10 for the determinism argument).
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include <openspace/geo/vec3.hpp>

namespace openspace {

/// Widest longitude half-width of the spherical cap centered at latitude
/// `centerLatRad` with angular radius `capRadiusRad`, over query latitudes
/// in [latLoRad, latHiRad]: an upper bound on |lon(point) - lon(center)|
/// for any cap point whose latitude falls in the range. Returns pi when the
/// cap wraps a pole over the range (every longitude qualifies). Exposed for
/// the property tests; the index calls it once per (cap, band) at build.
double capLonHalfWidthRad(double centerLatRad, double capRadiusRad,
                          double latLoRad, double latHiRad);

/// Immutable (latitude band x longitude sector) cell index over spherical
/// caps. Thread-safe for concurrent queries after construction.
class SphericalCapIndex {
 public:
  /// One cap: a unit direction and an angular radius.
  struct Cap {
    Vec3 unitCenter;
    double halfAngleRad = 0.0;
  };

  /// An empty index: no caps, every query visits nothing.
  SphericalCapIndex() = default;

  /// Build over `caps` (cap i keeps index i). Half-angles are clamped to
  /// [0, pi]; centers must be unit vectors (|z| is clamped defensively).
  /// The cell size is chosen as a small fraction of the mean half-angle:
  /// fine enough that most cells lie entirely inside or outside a typical
  /// cap (which is what makes whole-cell certificates effective), coarse
  /// enough that registrations stay linear in the cap count.
  explicit SphericalCapIndex(const std::vector<Cap>& caps);

  std::size_t size() const noexcept { return capCount_; }
  std::size_t bandCount() const noexcept { return bands_; }
  std::size_t sectorCount() const noexcept { return sectors_; }
  std::size_t cellCount() const noexcept { return bands_ * sectors_; }
  /// Total (cap, cell) registrations — the index's memory footprint.
  std::size_t entryCount() const noexcept { return cellEntry_.size(); }

  /// Approximate resident size in bytes: the center arrays plus the CSR
  /// cell table. Feeds the byte-budgeted caches that hold compiled
  /// indexes (e.g. FootprintIndex2::compiled).
  std::size_t approxBytes() const noexcept {
    return sizeof(*this) +
           (centerLatRad_.size() + centerLonRad_.size()) * sizeof(double) +
           (cellStart_.size() + cellEntry_.size()) * sizeof(std::uint32_t);
  }

  /// The cell the unit direction stabs. Branchless: one multiply+floor for
  /// the band, one division+floor for the sector.
  std::size_t cellIndexOf(const Vec3& unitDir) const noexcept {
    return bandOf(unitDir.z) * sectors_ + sectorOf(unitDir.x, unitDir.y);
  }

  /// Batch cellIndexOf: outCells[i] = cellIndexOf(unitDirs[i]) for every
  /// i < n, bit-identical to the scalar member on every input (the map
  /// uses only exactly-rounded IEEE operations — see
  /// geo/spherical_index_simd.hpp). Runtime-dispatched to the AVX2 kernel
  /// when available; the Monte-Carlo sweeps batch their sample chunks
  /// through this before the per-sample candidate scans.
  void cellIndicesOf(const Vec3* unitDirs, std::size_t n,
                     std::uint32_t* outCells) const;

  /// Entry range [first, second) of `cell` in entries(): the ascending cap
  /// indices registered there.
  std::pair<std::uint32_t, std::uint32_t> cellEntryRange(
      std::size_t cell) const noexcept {
    return {cellStart_[cell], cellStart_[cell + 1]};
  }

  /// Flat entry array all cellEntryRange ranges point into.
  const std::vector<std::uint32_t>& entries() const noexcept {
    return cellEntry_;
  }

  /// Four unit directions whose spherical lat/lon rectangle conservatively
  /// contains every direction mapping to `cell` (the cell's corners,
  /// expanded outward by the query-side rounding pad). Order: (latLo,lonLo),
  /// (latLo,lonHi), (latHi,lonLo), (latHi,lonHi). Because a cell is bounded
  /// by two latitude circles and two meridian arcs, the maximum central
  /// angle from any external point P to the cell is attained at one of
  /// these corners — provided the distance from P to the cell stays below
  /// ~pi/2 (beyond that a meridian edge can hide an interior maximum).
  /// Callers building whole-cell certificates must respect that bound; see
  /// FootprintIndex2 and DESIGN.md §10.
  std::array<Vec3, 4> cellCornerDirs(std::size_t cell) const;

  /// Visit the index of every cap that *may* contain the unit direction
  /// `unitDir` — a guaranteed superset of the true containing set; each
  /// cap is visited at most once, in ascending cap order. A callback
  /// returning bool stops the scan early by returning true (the function
  /// then returns true); void callbacks always see every candidate.
  template <typename Fn>
  bool forEachCandidate(const Vec3& unitDir, Fn&& fn) const {
    if (cellEntry_.empty()) return false;
    const auto [lo, hi] = cellEntryRange(cellIndexOf(unitDir));
    for (std::uint32_t e = lo; e < hi; ++e) {
      if constexpr (std::is_same_v<
                        std::invoke_result_t<Fn&, std::uint32_t>, bool>) {
        if (fn(cellEntry_[e])) return true;
      } else {
        fn(cellEntry_[e]);
      }
    }
    return false;
  }

  /// Append (ascending, deduplicated, excluding i itself) the index of
  /// every cap whose *center* may lie within `radiusRad` of cap i's center.
  /// Superset-guaranteed, like forEachCandidate. Drives the worst-case
  /// overlap band-sweep: pass radius = halfAngle(i) + max half-angle.
  void neighborhoodCandidates(std::size_t i, double radiusRad,
                              std::vector<std::uint32_t>& out) const;

 private:
  // units: unit-sphere z component, dimensionless in [-1, 1]
  std::size_t bandOf(double unitZ) const noexcept {
    const double scaled =  // units: fractional band index
        (unitZ + 1.0) * 0.5 * static_cast<double>(bands_);
    if (!(scaled > 0.0)) return 0;  // also catches NaN
    const auto b = static_cast<std::size_t>(scaled);
    return (b >= bands_) ? bands_ - 1 : b;
  }

  /// Monotone trig-free stand-in for atan2(y, x): strictly increasing in
  /// the true longitude, range [-2, 2] with both ends meeting at the +-pi
  /// seam. Sector boundaries live in this space, so queries never touch
  /// atan2 — registration converts its (padded) true-angle windows once at
  /// build time. Written select-style (no data-dependent branches): the
  /// signs of x and y are effectively random in the hot sweeps, and a
  /// mispredict here would serialize the whole query pipeline.
  // units: pseudo-angle, monotone in longitude over [-2, 2]
  static double pseudoAngle(double x, double y) noexcept {
    const double d = std::abs(x) + std::abs(y);  // units: 1-norm of (x, y)
    const double t = d > 0.0 ? y / d : 0.0;  // units: normalized y (pole: 0)
    return t +
           static_cast<double>(x < 0.0) * (std::copysign(2.0, y) - 2.0 * t);
  }

  // units: x, y are unit-direction components
  std::size_t sectorOf(double x, double y) const noexcept {
    const double scaled =  // units: fractional sector index
        (pseudoAngle(x, y) + 2.0) * 0.25 * static_cast<double>(sectors_);
    if (!(scaled > 0.0)) return 0;
    const auto s = static_cast<std::size_t>(scaled);
    return (s >= sectors_) ? sectors_ - 1 : s;
  }

  /// A contiguous (mod sectors_) run of sectors: `count` sectors starting
  /// at `start`, wrapping through the +-pi seam when needed.
  struct SectorWindow {
    std::uint32_t start;
    std::uint32_t count;
  };

  /// The sector run covering the true-angle window centerLon +- halfWidth
  /// (both radians). Endpoints go through the same pseudo-angle map queries
  /// use, so (with the registration-side longitude pad) query rounding can
  /// never fall off the edge.
  SectorWindow sectorWindow(double centerLonRad, double halfWidthRad) const;

  std::size_t capCount_ = 0;
  std::size_t bands_ = 1;
  std::size_t sectors_ = 1;
  // Cap centers in spherical coordinates (for neighborhood queries).
  std::vector<double> centerLatRad_;
  std::vector<double> centerLonRad_;
  // CSR: cell (b, s) owns cellEntry_[cellStart_[b*sectors_+s] ..
  // cellStart_[b*sectors_+s+1]), ascending cap indices.
  std::vector<std::uint32_t> cellStart_ = {0, 0};
  std::vector<std::uint32_t> cellEntry_;
};

}  // namespace openspace
