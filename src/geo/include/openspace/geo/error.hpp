// Error hierarchy shared by all OpenSpace modules.
//
// All recoverable failures in the library are reported via exceptions
// derived from openspace::Error (itself a std::runtime_error), so that a
// single catch clause can intercept any library failure while the type
// tells the caller which subsystem rejected the operation.
#pragma once

#include <stdexcept>
#include <string>

namespace openspace {

/// Base class for every exception thrown by the OpenSpace library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller-supplied argument violated a documented precondition.
class InvalidArgumentError : public Error {
 public:
  explicit InvalidArgumentError(const std::string& what) : Error(what) {}
};

/// An entity (node, link, route, account, ...) was looked up but does not exist.
class NotFoundError : public Error {
 public:
  explicit NotFoundError(const std::string& what) : Error(what) {}
};

/// The operation is valid in principle but not in the object's current state
/// (e.g. transmitting on a link that has not completed pairing).
class StateError : public Error {
 public:
  explicit StateError(const std::string& what) : Error(what) {}
};

/// A protocol-level failure: malformed message, failed authentication,
/// incompatible capabilities, pairing rejection, ...
class ProtocolError : public Error {
 public:
  explicit ProtocolError(const std::string& what) : Error(what) {}
};

/// A resource budget (power, bandwidth, terminal count, funds) was exceeded.
class CapacityError : public Error {
 public:
  explicit CapacityError(const std::string& what) : Error(what) {}
};

}  // namespace openspace
