// WGS-84 reference constants. The simulator uses the spherical mean-radius
// Earth for coverage/footprint geometry (as the paper's simplified
// simulation does) and the full ellipsoid for geodetic<->ECEF conversion.
#pragma once

namespace openspace::wgs84 {

/// Semi-major axis (equatorial radius), meters.
inline constexpr double kSemiMajorAxisM = 6'378'137.0;
/// Flattening.
inline constexpr double kFlattening = 1.0 / 298.257'223'563;  // units: dimensionless
/// Semi-minor axis (polar radius), meters.
inline constexpr double kSemiMinorAxisM = kSemiMajorAxisM * (1.0 - kFlattening);
/// First eccentricity squared.
// units: dimensionless
inline constexpr double kEccentricitySquared = kFlattening * (2.0 - kFlattening);
/// Mean Earth radius (IUGG), meters. Used for spherical geometry.
inline constexpr double kMeanRadiusM = 6'371'008.771'4;
/// Standard gravitational parameter GM, m^3/s^2.
inline constexpr double kMuM3PerS2 = 3.986'004'418e14;
/// Earth rotation rate, rad/s (sidereal).
inline constexpr double kEarthRotationRadPerS = 7.292'115'146'7e-5;

}  // namespace openspace::wgs84
