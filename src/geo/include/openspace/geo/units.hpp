// Lightweight unit helpers.
// units-file: these ARE the unit conversions; each helper names its unit.
//
// The library uses SI doubles internally (meters, seconds, hertz, watts,
// radians). These helpers make call sites explicit about units without the
// cost or friction of a full dimensional-analysis library: conversion
// functions are constexpr and named after the unit they accept.
#pragma once

#include <numbers>

namespace openspace {

inline constexpr double kSpeedOfLightMps = 299'792'458.0;
inline constexpr double kBoltzmannJPerK = 1.380'649e-23;

// ---- angles ---------------------------------------------------------------

/// Degrees -> radians.
constexpr double deg2rad(double deg) noexcept {
  return deg * std::numbers::pi / 180.0;
}

/// Radians -> degrees.
constexpr double rad2deg(double rad) noexcept {
  return rad * 180.0 / std::numbers::pi;
}

// ---- distance -------------------------------------------------------------

constexpr double km(double v) noexcept { return v * 1'000.0; }
constexpr double meters(double v) noexcept { return v; }

// ---- time -----------------------------------------------------------------

constexpr double seconds(double v) noexcept { return v; }
constexpr double minutes(double v) noexcept { return v * 60.0; }
constexpr double hours(double v) noexcept { return v * 3'600.0; }
constexpr double milliseconds(double v) noexcept { return v * 1e-3; }
constexpr double microseconds(double v) noexcept { return v * 1e-6; }

/// Seconds -> milliseconds, for reporting.
constexpr double toMilliseconds(double s) noexcept { return s * 1e3; }

// ---- frequency / data rate ------------------------------------------------

constexpr double hz(double v) noexcept { return v; }
constexpr double kilohertz(double v) noexcept { return v * 1e3; }
constexpr double megahertz(double v) noexcept { return v * 1e6; }
constexpr double gigahertz(double v) noexcept { return v * 1e9; }

constexpr double bps(double v) noexcept { return v; }
constexpr double kbps(double v) noexcept { return v * 1e3; }
constexpr double mbps(double v) noexcept { return v * 1e6; }
constexpr double gbps(double v) noexcept { return v * 1e9; }

// ---- power ----------------------------------------------------------------

constexpr double watts(double v) noexcept { return v; }

/// Watts -> dBW.
double wattsToDbw(double w);
/// dBW -> watts.
double dbwToWatts(double dbw);
/// Watts -> dBm.
double wattsToDbm(double w);
/// dBm -> watts.
double dbmToWatts(double dbm);
/// Linear ratio -> dB.
double ratioToDb(double ratio);
/// dB -> linear ratio.
double dbToRatio(double db);

}  // namespace openspace
