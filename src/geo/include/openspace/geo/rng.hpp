// Deterministic random number generation.
// units-file: distribution parameters are in whatever units the caller samples.
//
// Every stochastic component in the library draws from an explicitly seeded
// Rng so that simulations are exactly reproducible; no component touches
// global random state.
#pragma once

#include <cstdint>
#include <random>

#include <openspace/geo/geodetic.hpp>

namespace openspace {

/// Seeded pseudo-random source (mt19937_64 under the hood) with the handful
/// of distributions the simulator needs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

  /// Exponentially distributed value with the given rate (1/mean).
  double exponential(double rate);

  /// Normally distributed value.
  double normal(double mean, double stddev);

  /// Bernoulli trial.
  bool chance(double probability);

  /// A point uniformly distributed on the unit sphere.
  Vec3 unitSphere();

  /// A geodetic surface point uniformly distributed by area (not by
  /// lat/lon grid), altitude 0.
  Geodetic surfacePoint();

  /// Underlying engine, for std distributions not wrapped here.
  std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace openspace
