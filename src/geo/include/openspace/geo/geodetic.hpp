// Geodetic coordinates and frame conversions.
//
// Frames used by the library:
//  * Geodetic (latitude, longitude, altitude) on the WGS-84 ellipsoid.
//  * ECEF  - Earth-centered, Earth-fixed Cartesian (meters). Ground assets
//            are static in ECEF.
//  * ECI   - Earth-centered inertial Cartesian (meters). Orbits are
//            propagated in ECI; the two frames coincide at t = 0 and differ
//            by Earth's rotation about +Z afterwards.
#pragma once

#include <openspace/geo/vec3.hpp>

namespace openspace {

/// A geodetic position. Latitude/longitude in radians, altitude in meters
/// above the WGS-84 ellipsoid.
struct Geodetic {
  double latitudeRad = 0.0;   ///< [-pi/2, pi/2]
  double longitudeRad = 0.0;  ///< (-pi, pi]
  double altitudeM = 0.0;

  /// Convenience factory taking degrees.
  static Geodetic fromDegrees(double latDeg, double lonDeg, double altM = 0.0);

  constexpr bool operator==(const Geodetic&) const noexcept = default;
};

/// Geodetic -> ECEF (WGS-84 ellipsoid). Throws InvalidArgumentError if the
/// latitude is outside [-pi/2, pi/2].
Vec3 geodeticToEcef(const Geodetic& g);

/// ECEF -> geodetic using Bowring's closed-form approximation followed by
/// two Newton refinement steps (sub-millimeter for LEO-relevant altitudes).
Geodetic ecefToGeodetic(const Vec3& ecef);

/// Rotate an ECI position into ECEF at time t (seconds since epoch; the
/// frames coincide at t = 0).
Vec3 eciToEcef(const Vec3& eci, double tSeconds);

/// Rotate an ECEF position into ECI at time t.
Vec3 ecefToEci(const Vec3& ecef, double tSeconds);

/// Great-circle (haversine) surface distance between two geodetic points on
/// the spherical mean-radius Earth, meters. Altitudes are ignored.
double greatCircleDistanceM(const Geodetic& a, const Geodetic& b);

/// Central angle in radians subtended at the Earth's center by two geodetic
/// points (spherical model).
double centralAngleRad(const Geodetic& a, const Geodetic& b);

/// Elevation angle (radians) of a target at ECEF position `target` as seen
/// from an observer at ECEF `observer` standing on (or near) the Earth's
/// surface. Positive means above the local horizon plane.
double elevationAngleRad(const Vec3& observer, const Vec3& target);

/// Straight-line (slant) range between two ECEF/ECI points, meters.
double slantRangeM(const Vec3& a, const Vec3& b);

/// True if the straight segment between two points (ECI or ECEF, meters)
/// clears the spherical Earth by at least `clearanceM`. Used for ISL
/// line-of-sight checks (satellites cannot talk through the planet).
bool lineOfSightClear(const Vec3& a, const Vec3& b, double clearanceM = 0.0);

}  // namespace openspace
