// Minimal 3-vector used for positions (meters, ECEF/ECI) and velocities.
// units-file: generic linear-algebra primitive; frames/units are set by producers.
#pragma once

#include <cmath>
#include <ostream>

namespace openspace {

/// Cartesian 3-vector. Component semantics (frame, units) are given by the
/// API that produces it; positions in this library are meters.
struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3 operator+(const Vec3& o) const noexcept {
    return {x + o.x, y + o.y, z + o.z};
  }
  constexpr Vec3 operator-(const Vec3& o) const noexcept {
    return {x - o.x, y - o.y, z - o.z};
  }
  constexpr Vec3 operator*(double s) const noexcept { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(double s) const noexcept { return {x / s, y / s, z / s}; }
  constexpr Vec3 operator-() const noexcept { return {-x, -y, -z}; }

  constexpr Vec3& operator+=(const Vec3& o) noexcept {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  constexpr Vec3& operator-=(const Vec3& o) noexcept {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }

  constexpr bool operator==(const Vec3&) const noexcept = default;

  constexpr double dot(const Vec3& o) const noexcept {
    return x * o.x + y * o.y + z * o.z;
  }
  constexpr Vec3 cross(const Vec3& o) const noexcept {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  constexpr double normSquared() const noexcept { return dot(*this); }
  double norm() const noexcept { return std::sqrt(normSquared()); }

  /// Unit vector in the same direction. Undefined for the zero vector
  /// (returns a vector of NaNs, matching IEEE division semantics).
  Vec3 normalized() const noexcept {
    const double n = norm();
    return {x / n, y / n, z / n};
  }

  double distanceTo(const Vec3& o) const noexcept { return (*this - o).norm(); }
};

constexpr Vec3 operator*(double s, const Vec3& v) noexcept { return v * s; }

inline std::ostream& operator<<(std::ostream& os, const Vec3& v) {
  return os << '(' << v.x << ", " << v.y << ", " << v.z << ')';
}

/// Angle in radians between two non-zero vectors, in [0, pi].
double angleBetween(const Vec3& a, const Vec3& b);

}  // namespace openspace
