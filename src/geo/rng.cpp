#include <openspace/geo/rng.hpp>

#include <algorithm>
#include <cmath>
#include <numbers>

#include <openspace/geo/error.hpp>

namespace openspace {

double Rng::uniform(double lo, double hi) {
  if (!(lo <= hi)) throw InvalidArgumentError("Rng::uniform: lo > hi");
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::int64_t Rng::uniformInt(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw InvalidArgumentError("Rng::uniformInt: lo > hi");
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double Rng::exponential(double rate) {
  if (rate <= 0.0) throw InvalidArgumentError("Rng::exponential: rate must be > 0");
  return std::exponential_distribution<double>(rate)(engine_);
}

double Rng::normal(double mean, double stddev) {
  if (stddev < 0.0) throw InvalidArgumentError("Rng::normal: stddev must be >= 0");
  if (stddev == 0.0) return mean;
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

bool Rng::chance(double probability) {
  if (probability < 0.0 || probability > 1.0) {
    throw InvalidArgumentError("Rng::chance: probability outside [0, 1]");
  }
  return std::bernoulli_distribution(probability)(engine_);
}

Vec3 Rng::unitSphere() {
  // Marsaglia-style: z uniform in [-1,1], azimuth uniform. Area-uniform.
  const double z = uniform(-1.0, 1.0);
  const double phi = uniform(0.0, 2.0 * std::numbers::pi);
  const double r = std::sqrt(std::max(0.0, 1.0 - z * z));
  return {r * std::cos(phi), r * std::sin(phi), z};
}

Geodetic Rng::surfacePoint() {
  const Vec3 p = unitSphere();
  return {std::asin(std::clamp(p.z, -1.0, 1.0)), std::atan2(p.y, p.x), 0.0};
}

}  // namespace openspace
