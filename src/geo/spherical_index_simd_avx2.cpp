// AVX2+FMA instantiation of the cell-mapping kernel.
//
// Compiled with -mavx2 -mfma on x86-64 (see src/geo/CMakeLists.txt); on
// other targets — or if the compiler lacks the flags — this file degrades
// to a forwarder onto the scalar instantiation and reports the AVX2
// kernel as not built. Only cellIndicesAvx2 may live here: nothing
// outside this translation unit is compiled with AVX2 flags, and the
// dispatcher guarantees it is never called on a CPU without AVX2+FMA.
#include <openspace/geo/spherical_index_simd.hpp>

#if defined(__AVX2__) && defined(__FMA__)

#include <openspace/core/simd_lanes.hpp>

#include "spherical_index_simd_lanes.hpp"

namespace openspace::simd {

bool avx2CellKernelBuilt() noexcept { return true; }

void cellIndicesAvx2(const Vec3* dirs, std::uint32_t* outCells,
                     std::size_t bands, std::size_t sectors, std::size_t begin,
                     std::size_t end) {
  cellIndicesLanes<Avx2Ops>(dirs, outCells, bands, sectors, begin, end);
}

}  // namespace openspace::simd

#else  // !(__AVX2__ && __FMA__)

namespace openspace::simd {

bool avx2CellKernelBuilt() noexcept { return false; }

void cellIndicesAvx2(const Vec3* dirs, std::uint32_t* outCells,
                     std::size_t bands, std::size_t sectors, std::size_t begin,
                     std::size_t end) {
  cellIndicesScalar4(dirs, outCells, bands, sectors, begin, end);
}

}  // namespace openspace::simd

#endif
