// Shared 4-lane implementation of the batch cell-mapping kernel.
//
// Included by exactly two translation units — spherical_index_simd.cpp
// (ScalarOps lanes) and spherical_index_simd_avx2.cpp (Avx2Ops lanes,
// -mavx2 -mfma) — and must stay private to src/geo. Each step below
// mirrors one expression of SphericalCapIndex::bandOf / pseudoAngle /
// sectorOf with the identical operation order; every operation is
// exactly rounded (add, mul, div) or exact (abs, sign transfer, ordered
// compares, truncation, bitwise selects), so the lanes are bit-identical
// to the scalar members under ANY Ops instantiation.
#pragma once

#include <cstdint>

#include <openspace/geo/spherical_index_simd.hpp>

namespace openspace::simd {

/// One group of k <= 4 directions starting at dirs[i]; stores k cells.
template <class O>
inline void cellGroup(const Vec3* dirs, std::uint32_t* outCells,
                      double bandsD, double sectorsD, std::size_t i,
                      std::size_t k) {
  using V = typename O::V;
  const V zero = O::broadcast(0.0);
  const V one = O::broadcast(1.0);
  const V two = O::broadcast(2.0);

  // Padding lanes (k < 4) run on the zero vector: band 0.5*bands, sector
  // from pseudo-angle 0 — valid arithmetic, results discarded below.
  double xs[4] = {0.0, 0.0, 0.0, 0.0};
  double ys[4] = {0.0, 0.0, 0.0, 0.0};
  double zs[4] = {0.0, 0.0, 0.0, 0.0};
  for (std::size_t j = 0; j < k; ++j) {
    xs[j] = dirs[i + j].x;
    ys[j] = dirs[i + j].y;
    zs[j] = dirs[i + j].z;
  }
  const V x = O::load(xs);
  const V y = O::load(ys);
  const V z = O::load(zs);

  // bandOf: scaled = (z + 1.0) * 0.5 * bands; !(scaled > 0) -> 0 (also
  // NaN); truncate; clamp to bands - 1. min() has vminpd semantics
  // (returns the second operand on NaN), and the and-mask zeroes exactly
  // the lanes the scalar guard returns 0 for, so the clamp chain matches
  // the scalar's guard-cast-clamp sequence on every input.
  const V scaledB =
      O::mul(O::mul(O::add(z, one), O::broadcast(0.5)), O::broadcast(bandsD));
  const V band = O::andV(
      O::min(O::truncToZero(scaledB), O::broadcast(bandsD - 1.0)),
      O::cmpLt(zero, scaledB));

  // pseudoAngle: d = |x| + |y|; t = d > 0 ? y / d : 0;
  // pa = t + (x < 0) * (copysign(2, y) - 2 * t).
  const V d = O::add(O::abs(x), O::abs(y));
  const V t = O::andV(O::div(y, d), O::cmpLt(zero, d));
  const V cs = O::orV(O::andV(y, O::broadcast(-0.0)), two);
  const V flag = O::andV(O::cmpLt(x, zero), one);
  const V pa = O::add(t, O::mul(flag, O::sub(cs, O::mul(two, t))));

  // sectorOf: same guard-cast-clamp chain on (pa + 2) * 0.25 * sectors.
  const V scaledS = O::mul(O::mul(O::add(pa, two), O::broadcast(0.25)),
                           O::broadcast(sectorsD));
  const V sector = O::andV(
      O::min(O::truncToZero(scaledS), O::broadcast(sectorsD - 1.0)),
      O::cmpLt(zero, scaledS));

  // cell = band * sectors + sector: integral values < 2^31, every product
  // and sum exact in double.
  const V cell = O::add(O::mul(band, O::broadcast(sectorsD)), sector);
  if (k == 4) {
    O::storeIndicesU32(outCells + i, cell);
  } else {
    std::uint32_t tmp[4];
    O::storeIndicesU32(tmp, cell);
    for (std::size_t j = 0; j < k; ++j) outCells[i + j] = tmp[j];
  }
}

template <class O>
inline void cellIndicesLanes(const Vec3* dirs, std::uint32_t* outCells,
                             std::size_t bands, std::size_t sectors,
                             std::size_t begin, std::size_t end) {
  const double bandsD = static_cast<double>(bands);
  const double sectorsD = static_cast<double>(sectors);
  std::size_t i = begin;
  for (; i + 4 <= end; i += 4) {
    cellGroup<O>(dirs, outCells, bandsD, sectorsD, i, 4);
  }
  if (i < end) {
    cellGroup<O>(dirs, outCells, bandsD, sectorsD, i, end - i);
  }
}

}  // namespace openspace::simd
