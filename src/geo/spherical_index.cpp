#include <openspace/geo/spherical_index.hpp>

#include <algorithm>
#include <cmath>
#include <numbers>

#include <openspace/core/assert.hpp>
#include <openspace/geo/error.hpp>
#include <openspace/geo/spherical_index_simd.hpp>

namespace openspace {

namespace {

constexpr double kPi = std::numbers::pi;

/// Registration-side padding. These only have to absorb the rounding of
/// the index's own trigonometry (sin/asin/acos at build time, plus the
/// ~1-ulp difference between the pseudo-angle of a window endpoint and the
/// pseudo-angle of a query direction at the same longitude — both go
/// through the identical monotone map, so their order can only flip within
/// that rounding). Semantic padding for a caller's exact predicate is the
/// caller's job. Pads are applied outward on registration extents and
/// never on queries, preserving the superset guarantee.
constexpr double kZPad = 1e-12;
constexpr double kLonPadRad = 1e-9;

/// Pad (in pseudo-angle units) applied outward when converting a cell's
/// sector bounds back to directions for cellCornerDirs: 1e-9 pseudo-angle
/// dwarfs the ~1-ulp rounding of the forward map, so the returned corner
/// rectangle contains every direction that stabs the cell.
constexpr double kPseudoPad = 1e-9;

/// Longitude half-width of the cap at one query latitude: the largest
/// |delta lon| such that the great-circle angle from (centerLat, 0) to
/// (pointLat, delta lon) is still <= capRadius. Solved from the spherical
/// law of cosines: cos(capRadius) = sin(c)sin(p) + cos(c)cos(p)cos(dLon).
double capLonHalfWidthAtLatRad(double centerLatRad, double capRadiusRad,
                               double pointLatRad) {
  const double denom = std::cos(centerLatRad) * std::cos(pointLatRad);
  if (denom <= 1e-15) {
    // Query latitude (or the center) at a pole: longitude is degenerate
    // there, so every longitude must count.
    return kPi;
  }
  const double num =
      std::cos(capRadiusRad) - std::sin(centerLatRad) * std::sin(pointLatRad);
  const double c = num / denom;
  if (c <= -1.0) return kPi;  // whole latitude circle inside the cap
  if (c >= 1.0) return 0.0;   // latitude circle outside the cap's reach
  return std::acos(c);
}

/// Inverse of SphericalCapIndex's pseudo-angle map: the unit (x, y) whose
/// pseudo-angle is `a` (clamped to [-2, 2]). Piecewise-linear inverse of
/// t = y / (|x| + |y|) on the 1-norm circle, then normalized.
void pseudoAngleDir(double a, double& x, double& y) {
  a = std::clamp(a, -2.0, 2.0);
  double ux;
  double uy;
  if (a <= -1.0) {  // third quadrant: x <= 0, y <= 0
    ux = a + 1.0;
    uy = -2.0 - a;
  } else if (a >= 1.0) {  // second quadrant: x <= 0, y >= 0
    ux = 1.0 - a;
    uy = 2.0 - a;
  } else {  // x >= 0
    ux = 1.0 - std::abs(a);
    uy = a;
  }
  const double norm = std::hypot(ux, uy);
  x = ux / norm;
  y = uy / norm;
}

}  // namespace

double capLonHalfWidthRad(double centerLatRad, double capRadiusRad,
                          double latLoRad, double latHiRad) {
  if (latLoRad > latHiRad) std::swap(latLoRad, latHiRad);
  if (capRadiusRad >= kPi) return kPi;
  if (capRadiusRad < 0.0) return 0.0;
  double w = std::max(
      capLonHalfWidthAtLatRad(centerLatRad, capRadiusRad, latLoRad),
      capLonHalfWidthAtLatRad(centerLatRad, capRadiusRad, latHiRad));
  // The width as a function of query latitude is unimodal between the cap's
  // latitude extremes, peaking at the tangent latitude where the cap's
  // bounding meridians touch it: sin(phi*) = sin(centerLat) / cos(radius).
  // For radius >= pi/2 the formula degenerates (the cap covers a hemisphere
  // or more and can wrap a pole); be conservative there.
  const double cr = std::cos(capRadiusRad);
  if (cr <= 1e-12) return kPi;
  const double s = std::sin(centerLatRad) / cr;
  if (s >= -1.0 && s <= 1.0) {
    const double tangentLatRad = std::asin(s);
    if (tangentLatRad > latLoRad && tangentLatRad < latHiRad) {
      w = std::max(
          w, capLonHalfWidthAtLatRad(centerLatRad, capRadiusRad, tangentLatRad));
    }
  }
  return w;
}

SphericalCapIndex::SectorWindow SphericalCapIndex::sectorWindow(
    double centerLonRad, double halfWidthRad) const {
  SectorWindow w{0, static_cast<std::uint32_t>(sectors_)};
  // The endpoint sectors below determine the span only while the window's
  // complement is wider than any single sector: a nearly-full window (gap
  // 2*pi - 2*halfWidth narrower than the sector containing it) lands both
  // endpoints in that one sector and would masquerade as a single-sector
  // sliver. Sectors are uniform in pseudo-angle, and the true-angle width
  // of a sector is at most twice its pseudo-angle width (dtheta/da =
  // (|cos| + |sin|)^2 <= 2), i.e. <= 8/sectors_ rad — so any window whose
  // gap could fit inside one sector is treated as full-circle.
  const double maxSectorWidthRad = 8.0 / static_cast<double>(sectors_);
  if (halfWidthRad < kPi - 0.5 * maxSectorWidthRad) {
    // Window endpoints in true angle -> sectors via the same pseudo-angle
    // map queries use. The half-width already carries the registration
    // longitude pad, which dominates the rounding difference between this
    // conversion and a query's pseudoAngle(x, y) at the same longitude, so
    // no whole-sector expansion is needed. A wrapped window (lonLo > lonHi
    // after reduction) walks through the seam like any other.
    const double lonLo = std::remainder(centerLonRad - halfWidthRad, 2.0 * kPi);
    const double lonHi = std::remainder(centerLonRad + halfWidthRad, 2.0 * kPi);
    const std::size_t sLo = sectorOf(std::cos(lonLo), std::sin(lonLo));
    const std::size_t sHi = sectorOf(std::cos(lonHi), std::sin(lonHi));
    const std::size_t span = (sHi + sectors_ - sLo) % sectors_ + 1;
    if (span < sectors_) {
      w.start = static_cast<std::uint32_t>(sLo);
      w.count = static_cast<std::uint32_t>(span);
    }
  }
  return w;
}

SphericalCapIndex::SphericalCapIndex(const std::vector<Cap>& caps)
    : capCount_(caps.size()) {
  if (capCount_ >= 0xFFFFFFFFull) {
    throw InvalidArgumentError("SphericalCapIndex: cap count exceeds 32 bits");
  }
  centerLatRad_.resize(capCount_);
  centerLonRad_.resize(capCount_);
  std::vector<double> halfAngleRad(capCount_);
  double meanHalfAngleRad = 0.0;
  for (std::size_t i = 0; i < capCount_; ++i) {
    const Vec3& c = caps[i].unitCenter;
    centerLatRad_[i] = std::asin(std::clamp(c.z, -1.0, 1.0));
    centerLonRad_[i] = std::atan2(c.y, c.x);
    halfAngleRad[i] = std::clamp(caps[i].halfAngleRad, 0.0, kPi);
    meanHalfAngleRad += halfAngleRad[i];
  }
  // Cell size: a tenth of the mean cap radius for sparse fleets, coarser
  // as the fleet grows dense. Fine cells do two things: the per-cell
  // candidate lists hold little beyond the caps that truly reach their
  // points, and — more importantly for the Monte-Carlo sweeps — most
  // covered cells end up *entirely inside* some cap, which is what lets
  // FootprintIndex2's whole-cell certificates answer the bulk of queries
  // without touching a single cap.
  //
  // Two regimes (tests/test_footprint_index.cpp, CapIndexScaling):
  //  * Sparse (cap count up to ~800): registrations grow as
  //    (capRadius/cellSize)^2 per cap, so the sqrt(count) coarsening keeps
  //    the total entry count roughly constant while most cells are empty.
  //  * Dense: the coarsening must stop — per-cell lists cannot shrink
  //    below the fleet's intrinsic per-point cover count
  //    kappa = N * capAreaFraction, and a frozen grid inflates them by
  //    (1 + density)^2 over that floor while saving nothing (the old 0.6
  //    ceiling cost ~1.8x kappa at 66k caps). The 0.35 ceiling keeps the
  //    cell a fixed fraction of the cap radius: registrations per cap stay
  //    constant (~O(N) build, entries within a fixed multiple of N) and
  //    registrations per cell stay within ~1.3x of the kappa floor at any
  //    fleet size.
  if (capCount_ > 0) {
    meanHalfAngleRad /= static_cast<double>(capCount_);
    const double density =
        std::clamp(0.1 * std::sqrt(static_cast<double>(capCount_) / 66.0),
                   0.1, 0.35);
    const double cellRad = std::clamp(meanHalfAngleRad, 0.02, kPi) * density;
    bands_ = static_cast<std::size_t>(
        std::clamp(std::ceil(2.0 / cellRad), 13.0, 256.0));
    std::size_t sectors = 8;
    while (sectors < 4 * bands_ && sectors < 512) sectors *= 2;
    sectors_ = sectors;
  }

  // Register each cap in every cell its padded footprint touches. Two-pass
  // counting-sort build: pass one computes each (cap, band) sector window
  // once (all the trigonometry) and counts registrations per cell, pass
  // two fills the CSR from the recorded windows — no per-cell vectors, no
  // allocation churn on million-entry builds.
  struct BandWindow {
    std::uint32_t cap;
    std::uint32_t band;
    SectorWindow window;
  };
  std::vector<BandWindow> windows;
  windows.reserve(capCount_ * 2);
  std::vector<std::uint32_t> cellCountBuf(bands_ * sectors_, 0);
  for (std::size_t i = 0; i < capCount_; ++i) {
    const double lam = halfAngleRad[i];
    const double latLo = std::max(-kPi / 2.0, centerLatRad_[i] - lam);
    const double latHi = std::min(kPi / 2.0, centerLatRad_[i] + lam);
    const std::size_t bLo = bandOf(std::sin(latLo) - kZPad);
    const std::size_t bHi = bandOf(std::sin(latHi) + kZPad);
    for (std::size_t b = bLo; b <= bHi; ++b) {
      const double bandZLo =
          -1.0 + 2.0 * static_cast<double>(b) / static_cast<double>(bands_);
      const double bandZHi =
          -1.0 + 2.0 * static_cast<double>(b + 1) / static_cast<double>(bands_);
      double segLo = std::max(latLo, std::asin(std::clamp(bandZLo, -1.0, 1.0)));
      double segHi = std::min(latHi, std::asin(std::clamp(bandZHi, -1.0, 1.0)));
      if (segLo > segHi) {
        // Can only happen through the z padding at the extent's edge bands;
        // collapse to the nearer endpoint.
        segLo = segHi = std::clamp(centerLatRad_[i], segHi, segLo);
      }
      const double hw = std::min(
          kPi, capLonHalfWidthRad(centerLatRad_[i], lam, segLo, segHi) +
                   kLonPadRad);
      const SectorWindow w = sectorWindow(centerLonRad_[i], hw);
      windows.push_back({static_cast<std::uint32_t>(i),
                         static_cast<std::uint32_t>(b), w});
      std::size_t s = w.start;
      for (std::uint32_t k = 0; k < w.count; ++k) {
        ++cellCountBuf[b * sectors_ + s];
        s = (s + 1 == sectors_) ? 0 : s + 1;
      }
    }
  }

  std::size_t total = 0;
  for (const std::uint32_t c : cellCountBuf) total += c;
  if (total >= 0xFFFFFFFFull) {
    throw InvalidArgumentError(
        "SphericalCapIndex: cell registrations exceed 32 bits");
  }
  cellStart_.assign(bands_ * sectors_ + 1, 0);
  std::uint32_t offset = 0;
  for (std::size_t c = 0; c < cellCountBuf.size(); ++c) {
    cellStart_[c] = offset;
    offset += cellCountBuf[c];
  }
  cellStart_[cellCountBuf.size()] = offset;
  cellEntry_.resize(total);
  // Reuse the count buffer as per-cell fill cursors. Windows were recorded
  // in ascending cap order, so every cell list comes out sorted (one
  // registration per cap per cell).
  std::copy(cellStart_.begin(), cellStart_.end() - 1, cellCountBuf.begin());
  for (const BandWindow& bw : windows) {
    std::size_t s = bw.window.start;
    for (std::uint32_t k = 0; k < bw.window.count; ++k) {
      cellEntry_[cellCountBuf[bw.band * sectors_ + s]++] = bw.cap;
      s = (s + 1 == sectors_) ? 0 : s + 1;
    }
  }
  OPENSPACE_ASSERT(
      capCount_ == 0 || cellCountBuf[bands_ * sectors_ - 1] ==
                            cellStart_[bands_ * sectors_],
      "cell fill matches CSR offsets");
}

void SphericalCapIndex::cellIndicesOf(const Vec3* unitDirs, std::size_t n,
                                      std::uint32_t* outCells) const {
  simd::cellIndices(simd::cellKernelLevel(), unitDirs, outCells, bands_,
                    sectors_, 0, n);
}

std::array<Vec3, 4> SphericalCapIndex::cellCornerDirs(std::size_t cell) const {
  OPENSPACE_ASSERT(cell < cellCount(), "cell index within the grid");
  const std::size_t b = cell / sectors_;
  const std::size_t s = cell % sectors_;
  const double zLo = std::clamp(
      -1.0 + 2.0 * static_cast<double>(b) / static_cast<double>(bands_) - kZPad,
      -1.0, 1.0);
  const double zHi = std::clamp(
      -1.0 +
          2.0 * static_cast<double>(b + 1) / static_cast<double>(bands_) +
          kZPad,
      -1.0, 1.0);
  const double aLo =
      -2.0 + 4.0 * static_cast<double>(s) / static_cast<double>(sectors_) -
      kPseudoPad;
  const double aHi =
      -2.0 + 4.0 * static_cast<double>(s + 1) / static_cast<double>(sectors_) +
      kPseudoPad;
  double xLo;
  double yLo;
  double xHi;
  double yHi;
  pseudoAngleDir(aLo, xLo, yLo);
  pseudoAngleDir(aHi, xHi, yHi);
  std::array<Vec3, 4> corners;
  const double zs[2] = {zLo, zHi};
  for (std::size_t k = 0; k < 2; ++k) {
    const double c = std::sqrt(std::max(0.0, 1.0 - zs[k] * zs[k]));
    corners[2 * k] = Vec3{xLo * c, yLo * c, zs[k]};
    corners[2 * k + 1] = Vec3{xHi * c, yHi * c, zs[k]};
  }
  return corners;
}

void SphericalCapIndex::neighborhoodCandidates(
    std::size_t i, double radiusRad, std::vector<std::uint32_t>& out) const {
  out.clear();
  OPENSPACE_ASSERT(i < capCount_, "cap index within the index");
  if (capCount_ <= 1) return;
  const double lat = centerLatRad_[i];
  const double lon = centerLonRad_[i];
  const double r = std::clamp(radiusRad, 0.0, kPi);
  const double latLo = std::max(-kPi / 2.0, lat - r);
  const double latHi = std::min(kPi / 2.0, lat + r);
  const std::size_t bLo = bandOf(std::sin(latLo) - kZPad);
  const std::size_t bHi = bandOf(std::sin(latHi) + kZPad);
  for (std::size_t b = bLo; b <= bHi; ++b) {
    const double bandZLo =
        -1.0 + 2.0 * static_cast<double>(b) / static_cast<double>(bands_);
    const double bandZHi =
        -1.0 + 2.0 * static_cast<double>(b + 1) / static_cast<double>(bands_);
    double segLo = std::max(latLo, std::asin(std::clamp(bandZLo, -1.0, 1.0)));
    double segHi = std::min(latHi, std::asin(std::clamp(bandZHi, -1.0, 1.0)));
    if (segLo > segHi) segLo = segHi = std::clamp(lat, segHi, segLo);
    const double w = std::min(
        kPi, capLonHalfWidthRad(lat, r, segLo, segHi) + kLonPadRad);
    // Scan the same sector walk registration would use (sectorWindow, with
    // its near-full-window guard): every cap whose *center* longitude lies
    // in the window maps (monotone pseudo-angle, pad-covered rounding) to
    // one of these sectors, and a cap always registers in the cell
    // containing its center.
    const std::size_t base = b * sectors_;
    const SectorWindow win = sectorWindow(lon, w);
    std::size_t s = win.start;
    for (std::uint32_t k = 0; k < win.count; ++k) {
      const std::size_t c = base + s;
      for (std::uint32_t e = cellStart_[c]; e < cellStart_[c + 1]; ++e) {
        if (cellEntry_[e] != i) out.push_back(cellEntry_[e]);
      }
      s = (s + 1 == sectors_) ? 0 : s + 1;
    }
  }
  // A cap registers in several cells, so the scan sees it more than once;
  // the sweep consumers need each neighbor exactly once, in ascending
  // order (the legacy pair loop's visit order).
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

}  // namespace openspace
