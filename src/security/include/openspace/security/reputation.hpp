// Bad-actor detection and quarantine (paper §5(6)).
//
// "What security protocols can be enforced to ensure that a malicious
// provider does not take down the whole system? ... it is worth exploring
// a security protocol to quickly identify and cut off bad actors in the
// network." The pieces here:
//  * ReputationTracker — per-provider evidence accumulation with a
//    quarantine threshold; quarantined providers are cut out of routing.
//  * auditLedgers — turns the §3 cross-verifiable accounting into a
//    detector: discrepancies between the transacting parties' books are
//    attributed using third-party witnesses.
//  * quarantineAwareCost — a routing cost wrapper that refuses links
//    carried by quarantined providers.
#pragma once

#include <map>
#include <vector>

#include <openspace/econ/ledger.hpp>
#include <openspace/routing/route.hpp>

namespace openspace {

/// Kinds of observed misbehavior.
enum class MisbehaviorKind {
  LedgerInflation,   ///< Billing for traffic the counterparty never saw.
  TamperedPayload,   ///< Integrity tag failures on relayed user data.
  AuthAbuse,         ///< Forged/replayed authentication material.
  Interception,      ///< Evidence of traffic diversion to a non-member.
};

std::string_view misbehaviorName(MisbehaviorKind k) noexcept;

/// Beta-style reputation: score = good / (good + bad), with configurable
/// prior so new providers start trusted but not unimpeachable. Providers
/// whose score falls below the quarantine threshold are cut off until
/// enough good evidence accumulates.
class ReputationTracker {
 public:
  /// Throws InvalidArgumentError unless 0 < threshold < 1.
  explicit ReputationTracker(double quarantineScore = 0.5,
                             double priorGoodCount = 8.0, double priorBadCount = 1.0);

  /// Record misbehavior evidence; `severityWeight` scales the evidence (>= 0).
  void reportMisbehavior(ProviderId p, MisbehaviorKind kind,
                         double severityWeight = 1.0);

  /// Record successfully-audited good service.
  void reportGoodService(ProviderId p, double weight = 1.0);

  /// Current score in (0, 1); unknown providers return the prior score.
  double score(ProviderId p) const;

  bool quarantined(ProviderId p) const;
  std::vector<ProviderId> quarantinedProviders() const;

  /// Misbehavior counts by kind, for reporting.
  std::map<MisbehaviorKind, int> incidents(ProviderId p) const;

 private:
  struct Record {
    double goodCount;
    double badCount;
    std::map<MisbehaviorKind, int> incidents;
  };
  Record& recordOf(ProviderId p);

  double quarantineScore_;
  double priorGoodCount_;
  double priorBadCount_;
  std::map<ProviderId, Record> records_;
};

/// A detected books mismatch between a carrier and a traffic owner.
struct LedgerDiscrepancy {
  ProviderId carrier{};
  ProviderId owner{};
  double carrierClaimBytes = 0.0;
  double ownerClaimBytes = 0.0;
  /// The party whose claim disagrees with the witness consensus. 0 when no
  /// witness can arbitrate (the two principals simply disagree).
  ProviderId suspected{};
};

/// Audit every (carrier, owner) pair across all ledgers. For each mismatch
/// between the principals, third-party witnesses arbitrate: whichever
/// principal is farther from the maximum witnessed volume is suspected
/// (witnesses see subsets, so the true total is at least the witness max).
std::vector<LedgerDiscrepancy> auditLedgers(const SettlementEngine& engine,
                                            double toleranceBytes = 0.5);

/// Feed audit results into a reputation tracker (severityWeight scales with the
/// relative size of the discrepancy).
void applyAuditFindings(const std::vector<LedgerDiscrepancy>& findings,
                        ReputationTracker& reputation);

/// Wrap a cost function so links whose carrying providers are quarantined
/// become unroutable — the "cut off bad actors" enforcement point.
LinkCostFn quarantineAwareCost(LinkCostFn base, const ReputationTracker& rep);

}  // namespace openspace
