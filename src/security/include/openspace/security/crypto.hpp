// Baseline end-to-end protection (paper §5(6)).
//
// The paper calls for "a common baseline encryption scheme and security
// protocol implemented by all satellites to ensure secure end-to-end
// handling of user data" and protection against "attempts by non-OpenSpace
// agents to intercept user traffic". SecureChannel is that baseline in
// simulation form: authenticated encryption over a per-session key, so the
// simulator can model tampering/interception detection and its routing
// consequences.
//
// NOTE: the primitives are simulation-grade (64-bit keyed hashes, XOR
// keystream), NOT real cryptography. The library models the *protocol* and
// its failure handling, not key management strength.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace openspace {

/// An authenticated, encrypted payload.
struct SealedMessage {
  std::vector<std::uint8_t> ciphertext;
  std::uint64_t nonce = 0;
  std::uint64_t tag = 0;  ///< Integrity tag over nonce + ciphertext.
};

/// Symmetric authenticated-encryption channel between two parties that
/// share a session key.
class SecureChannel {
 public:
  explicit SecureChannel(std::uint64_t sessionKey) : key_(sessionKey) {}

  /// Encrypt-then-MAC. Each message must use a fresh nonce; reusing a
  /// nonce leaks keystream (as in any stream construction).
  SealedMessage seal(std::string_view plaintext, std::uint64_t nonce) const;

  /// Decrypt + verify. Returns nullopt if the tag does not match (the
  /// message was tampered with or forged).
  std::optional<std::string> open(const SealedMessage& msg) const;

  /// Derive a session key from two parties' secrets (models the result of
  /// a key agreement; the simulator gives both sides the derived value).
  static std::uint64_t deriveSessionKey(std::uint64_t secretA,
                                        std::uint64_t secretB);

 private:
  std::uint64_t key_;
};

}  // namespace openspace
