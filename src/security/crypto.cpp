#include <openspace/security/crypto.hpp>

#include <openspace/auth/certificate.hpp>  // keyedTag

namespace openspace {

namespace {

/// Splitmix64-based keystream byte for position i under (key, nonce).
std::uint8_t keystreamByte(std::uint64_t key, std::uint64_t nonce,
                           std::size_t i) {
  std::uint64_t x = key ^ (nonce + 0x9E3779B97F4A7C15ull * (i / 8 + 1));
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return static_cast<std::uint8_t>(x >> (8 * (i % 8)));
}

std::uint64_t macOver(std::uint64_t key, std::uint64_t nonce,
                      const std::vector<std::uint8_t>& data) {
  std::string buf;
  buf.reserve(data.size() + 8);
  for (int b = 0; b < 8; ++b) {
    buf.push_back(static_cast<char>((nonce >> (8 * b)) & 0xFF));
  }
  buf.append(data.begin(), data.end());
  return keyedTag(key, buf);
}

}  // namespace

SealedMessage SecureChannel::seal(std::string_view plaintext,
                                  std::uint64_t nonce) const {
  SealedMessage out;
  out.nonce = nonce;
  out.ciphertext.resize(plaintext.size());
  for (std::size_t i = 0; i < plaintext.size(); ++i) {
    out.ciphertext[i] = static_cast<std::uint8_t>(plaintext[i]) ^
                        keystreamByte(key_, nonce, i);
  }
  out.tag = macOver(key_, nonce, out.ciphertext);
  return out;
}

std::optional<std::string> SecureChannel::open(const SealedMessage& msg) const {
  if (macOver(key_, msg.nonce, msg.ciphertext) != msg.tag) {
    return std::nullopt;  // tampered or forged
  }
  std::string plaintext(msg.ciphertext.size(), '\0');
  for (std::size_t i = 0; i < msg.ciphertext.size(); ++i) {
    plaintext[i] = static_cast<char>(msg.ciphertext[i] ^
                                     keystreamByte(key_, msg.nonce, i));
  }
  return plaintext;
}

std::uint64_t SecureChannel::deriveSessionKey(std::uint64_t secretA,
                                              std::uint64_t secretB) {
  // Order-independent derivation so both sides compute the same key.
  const std::uint64_t lo = std::min(secretA, secretB);
  const std::uint64_t hi = std::max(secretA, secretB);
  return keyedTag(lo, std::to_string(hi));
}

}  // namespace openspace
