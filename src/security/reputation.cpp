#include <openspace/security/reputation.hpp>

#include <algorithm>
#include <cmath>
#include <set>

#include <openspace/geo/error.hpp>

namespace openspace {

std::string_view misbehaviorName(MisbehaviorKind k) noexcept {
  switch (k) {
    case MisbehaviorKind::LedgerInflation: return "ledger-inflation";
    case MisbehaviorKind::TamperedPayload: return "tampered-payload";
    case MisbehaviorKind::AuthAbuse: return "auth-abuse";
    case MisbehaviorKind::Interception: return "interception";
  }
  return "?";
}

ReputationTracker::ReputationTracker(double quarantineScore,
                                     double priorGoodCount, double priorBadCount)
    : quarantineScore_(quarantineScore),
      priorGoodCount_(priorGoodCount),
      priorBadCount_(priorBadCount) {
  if (quarantineScore <= 0.0 || quarantineScore >= 1.0) {
    throw InvalidArgumentError("ReputationTracker: threshold must be in (0,1)");
  }
  if (priorGoodCount <= 0.0 || priorBadCount <= 0.0) {
    throw InvalidArgumentError("ReputationTracker: priors must be > 0");
  }
}

ReputationTracker::Record& ReputationTracker::recordOf(ProviderId p) {
  const auto it = records_.find(p);
  if (it != records_.end()) return it->second;
  return records_.emplace(p, Record{priorGoodCount_, priorBadCount_, {}}).first->second;
}

void ReputationTracker::reportMisbehavior(ProviderId p, MisbehaviorKind kind,
                                          double severityWeight) {
  if (severityWeight < 0.0) {
    throw InvalidArgumentError("reportMisbehavior: negative severityWeight");
  }
  Record& r = recordOf(p);
  r.badCount += severityWeight;
  r.incidents[kind] += 1;
}

void ReputationTracker::reportGoodService(ProviderId p, double weight) {
  if (weight < 0.0) {
    throw InvalidArgumentError("reportGoodService: negative weight");
  }
  recordOf(p).goodCount += weight;
}

double ReputationTracker::score(ProviderId p) const {
  const auto it = records_.find(p);
  if (it == records_.end()) return priorGoodCount_ / (priorGoodCount_ + priorBadCount_);
  return it->second.goodCount / (it->second.goodCount + it->second.badCount);
}

bool ReputationTracker::quarantined(ProviderId p) const {
  return score(p) < quarantineScore_;
}

std::vector<ProviderId> ReputationTracker::quarantinedProviders() const {
  std::vector<ProviderId> out;
  for (const auto& [p, r] : records_) {
    if (quarantined(p)) out.push_back(p);
  }
  return out;
}

std::map<MisbehaviorKind, int> ReputationTracker::incidents(ProviderId p) const {
  const auto it = records_.find(p);
  return it == records_.end() ? std::map<MisbehaviorKind, int>{}
                              : it->second.incidents;
}

std::vector<LedgerDiscrepancy> auditLedgers(const SettlementEngine& engine,
                                            double toleranceBytes) {
  std::vector<LedgerDiscrepancy> findings;
  const auto providers = engine.providers();
  // Union of keys across all books.
  std::set<std::pair<ProviderId, ProviderId>> keys;
  for (const ProviderId p : providers) {
    for (const auto& [key, bytes] : engine.ledger(p).entries()) keys.insert(key);
  }
  for (const auto& [carrier, owner] : keys) {
    if (carrier == owner) continue;
    const bool haveCarrier =
        std::find(providers.begin(), providers.end(), carrier) != providers.end();
    const bool haveOwner =
        std::find(providers.begin(), providers.end(), owner) != providers.end();
    if (!haveCarrier || !haveOwner) continue;
    const double byCarrier = engine.ledger(carrier).carriedBytes(carrier, owner);
    const double byOwner = engine.ledger(owner).carriedBytes(carrier, owner);
    if (std::abs(byCarrier - byOwner) <= toleranceBytes) continue;

    LedgerDiscrepancy d;
    d.carrier = carrier;
    d.owner = owner;
    d.carrierClaimBytes = byCarrier;
    d.ownerClaimBytes = byOwner;
    // Witness arbitration: every witness saw a subset of the true traffic,
    // so the true volume >= max witnessed volume. A principal claiming
    // *less* than that is understating; a principal claiming more than the
    // other while no witness backs the excess is overstating.
    double witnessMax = 0.0;
    for (const ProviderId w : providers) {
      if (w == carrier || w == owner) continue;
      witnessMax =
          std::max(witnessMax, engine.ledger(w).carriedBytes(carrier, owner));
    }
    if (witnessMax > 0.0) {
      const double carrierErr =
          (byCarrier < witnessMax - toleranceBytes)
              ? witnessMax - byCarrier                      // understating
              : std::max(0.0, byCarrier - witnessMax);      // above witness
      const double ownerErr = (byOwner < witnessMax - toleranceBytes)
                                  ? witnessMax - byOwner
                                  : std::max(0.0, byOwner - witnessMax);
      d.suspected = (carrierErr > ownerErr) ? carrier : owner;
    }
    findings.push_back(d);
  }
  return findings;
}

void applyAuditFindings(const std::vector<LedgerDiscrepancy>& findings,
                        ReputationTracker& reputation) {
  for (const auto& d : findings) {
    if (!d.suspected.isValid()) continue;  // unarbitrated: no attribution
    const double base = std::max(d.carrierClaimBytes, d.ownerClaimBytes);
    const double severityWeight =
        (base > 0.0)
            ? std::abs(d.carrierClaimBytes - d.ownerClaimBytes) / base
            : 1.0;
    reputation.reportMisbehavior(d.suspected, MisbehaviorKind::LedgerInflation,
                                 severityWeight * 4.0);
  }
}

LinkCostFn quarantineAwareCost(LinkCostFn base, const ReputationTracker& rep) {
  return [base = std::move(base), &rep](const NetworkGraph& g, const Link& l,
                                        ProviderId home) -> double {
    if (rep.quarantined(g.node(l.a).provider) ||
        rep.quarantined(g.node(l.b).provider)) {
      return std::numeric_limits<double>::infinity();
    }
    return base(g, l, home);
  };
}

}  // namespace openspace
