// Shared Monte-Carlo stream derivation for the coverage estimators.
//
// Private to the coverage module (not installed under include/). Both the
// indexed estimators (coverage.cpp) and the brute executable spec
// (legacy.cpp) draw their per-chunk RNG streams from these exact
// functions: the bit-for-bit contract between the two paths depends on the
// chunk size and the seed derivation being literally the same code.
#pragma once

#include <cstddef>
#include <cstdint>

#include <openspace/geo/rng.hpp>

namespace openspace::coverage_detail {

/// Samples per RNG stream in the parallel Monte-Carlo estimators. Chunk
/// boundaries (and therefore every stream's draws) are fixed by the sample
/// count alone, so results are bit-identical at any thread count.
inline constexpr std::size_t kSampleChunk = 1024;

/// splitmix64 finalizer: decorrelates the per-chunk stream seeds.
inline std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// One deterministic RNG stream per sample chunk, derived from a single
/// draw off the caller's Rng (which also advances the caller's stream, so
/// successive calls with the same Rng differ as they always did).
inline Rng chunkRng(std::uint64_t baseSeed, std::size_t chunkIndex) {
  return Rng(mix64(baseSeed ^ (0xA0761D6478BD642Full * (chunkIndex + 1))));
}

}  // namespace openspace::coverage_detail
