// Indexed coverage estimators. Each estimator is bit-for-bit identical to
// its brute-force executable spec in legacy.cpp (openspace::legacy): the
// footprint index only prunes which satellites are *tested*, never what
// the test is, what order ties resolve in, or which RNG draws happen —
// property-tested in tests/test_footprint_index.cpp and hard-gated by
// bench/bench_coverage_index.cpp's checksums.
#include <openspace/coverage/coverage.hpp>

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>

#include <openspace/concurrency/parallel.hpp>
#include <openspace/coverage/footprint_index.hpp>
#include <openspace/geo/error.hpp>
#include <openspace/geo/wgs84.hpp>
#include <openspace/orbit/snapshot.hpp>
#include <openspace/orbit/visibility.hpp>

#include "coverage_sampling.hpp"

namespace openspace {

using coverage_detail::chunkRng;
using coverage_detail::kSampleChunk;

double capAreaFraction(double halfAngleRad) {
  if (halfAngleRad < 0.0) {
    throw InvalidArgumentError("capAreaFraction: negative half-angle");
  }
  return (1.0 - std::cos(std::min(halfAngleRad, std::numbers::pi))) / 2.0;
}

CoverageEstimate worstCaseOverlapCoverage(const std::vector<OrbitalElements>& sats,
                                          double tSeconds,
                                          double minElevationRad) {
  CoverageEstimate est;
  if (sats.empty()) return est;

  const auto snap = SnapshotCache::global().at(sats, tSeconds);
  const auto footprints = FootprintIndex2::compiled(snap, minElevationRad);

  // Worst-case pairwise collapse (see legacy.cpp for the brute spec): the
  // band sweep replaces the O(N^2) inner scan with each satellite's
  // overlap candidates — ascending and superset-guaranteed, so taking the
  // first exact-predicate match over them reproduces the greedy matching's
  // "first overlapping j > i" choice exactly.
  std::vector<bool> absorbed(sats.size(), false);
  int effective = static_cast<int>(sats.size());
  std::vector<std::uint32_t> candidates;
  for (std::size_t i = 0; i < sats.size(); ++i) {
    if (absorbed[i]) continue;
    footprints->overlapCandidates(i, candidates);
    for (const std::uint32_t j : candidates) {
      if (j <= i) continue;
      if (absorbed[j]) continue;
      if (angleBetween(footprints->direction(i), footprints->direction(j)) <
          footprints->halfAngleRad(i) + footprints->halfAngleRad(j)) {
        absorbed[i] = absorbed[j] = true;  // the pair counts as one cap
        --effective;
        break;
      }
    }
  }
  est.effectiveSatellites = effective;

  // Worst case: each component contributes a single cap (use the mean cap
  // fraction so heterogeneous altitudes average out).
  double meanCap = 0.0;
  for (std::size_t i = 0; i < sats.size(); ++i) {
    meanCap += capAreaFraction(footprints->halfAngleRad(i));
  }
  meanCap /= static_cast<double>(sats.size());
  est.coverageFraction = std::min(1.0, est.effectiveSatellites * meanCap);
  return est;
}

CoverageEstimate monteCarloCoverage(const std::vector<OrbitalElements>& sats,
                                    double tSeconds, double minElevationRad,
                                    int samples, Rng& rng) {
  if (samples <= 0) {
    throw InvalidArgumentError("monteCarloCoverage: samples must be > 0");
  }
  CoverageEstimate est;
  est.effectiveSatellites = static_cast<int>(sats.size());
  if (sats.empty()) return est;

  const auto snap = SnapshotCache::global().at(sats, tSeconds);
  const auto footprints = FootprintIndex2::compiled(snap, minElevationRad);
  const std::uint64_t baseSeed = rng.engine()();

  // Sample in ECI directly: coverage of the sphere is rotation-invariant.
  // The stream derivation and the per-sample draw sequence are identical
  // to the brute spec; only the covered-or-not evaluation is indexed.
  const std::size_t n = static_cast<std::size_t>(samples);
  std::vector<int> chunkCovered((n + kSampleChunk - 1) / kSampleChunk, 0);
  parallelFor(n, kSampleChunk, [&](std::size_t begin, std::size_t end) {
    Rng stream = chunkRng(baseSeed, begin / kSampleChunk);
    // Draw the chunk's directions first (the exact per-sample sequence
    // the brute spec draws), map them to grid cells in one SIMD batch,
    // then resolve each sample — bit-identical to calling anyCovers per
    // draw, since the batch cell map equals the scalar one.
    std::array<Vec3, kSampleChunk> dirs;
    std::array<std::uint32_t, kSampleChunk> cells;
    const std::size_t count = end - begin;
    for (std::size_t s = 0; s < count; ++s) dirs[s] = stream.unitSphere();
    footprints->cellIndicesOf(dirs.data(), count, cells.data());
    int covered = 0;
    for (std::size_t s = 0; s < count; ++s) {
      if (footprints->anyCoversAt(dirs[s], cells[s])) ++covered;
    }
    chunkCovered[begin / kSampleChunk] = covered;
  });
  const int covered =
      std::accumulate(chunkCovered.begin(), chunkCovered.end(), 0);
  est.coverageFraction = static_cast<double>(covered) / samples;
  return est;
}

double timeAveragedCoverage(const std::vector<OrbitalElements>& sats, double t0S,
                            double t1S, int steps, double minElevationRad,
                            int samplesPerStep, Rng& rng) {
  if (steps <= 0) {
    throw InvalidArgumentError("timeAveragedCoverage: steps must be > 0");
  }
  if (t1S < t0S) throw InvalidArgumentError("timeAveragedCoverage: t1S < t0S");
  double acc = 0.0;
  for (int i = 0; i < steps; ++i) {
    const double t =
        (steps == 1) ? t0S : t0S + (t1S - t0S) * static_cast<double>(i) / (steps - 1);
    acc += monteCarloCoverage(sats, t, minElevationRad, samplesPerStep, rng)
               .coverageFraction;
  }
  return acc / steps;
}

double kFoldCoverage(const std::vector<OrbitalElements>& sats, double tSeconds,
                     double minElevationRad, int k, int samples, Rng& rng) {
  if (k <= 0) throw InvalidArgumentError("kFoldCoverage: k must be > 0");
  if (samples <= 0) {
    throw InvalidArgumentError("kFoldCoverage: samples must be > 0");
  }
  if (sats.empty()) return 0.0;

  const auto snap = SnapshotCache::global().at(sats, tSeconds);
  const auto footprints = FootprintIndex2::compiled(snap, minElevationRad);
  const std::uint64_t baseSeed = rng.engine()();

  const std::size_t n = static_cast<std::size_t>(samples);
  std::vector<int> chunkCovered((n + kSampleChunk - 1) / kSampleChunk, 0);
  parallelFor(n, kSampleChunk, [&](std::size_t begin, std::size_t end) {
    Rng stream = chunkRng(baseSeed, begin / kSampleChunk);
    // Batched cell mapping, as in monteCarloCoverage above: same draw
    // sequence, same per-sample result, one SIMD pass over the chunk.
    std::array<Vec3, kSampleChunk> dirs;
    std::array<std::uint32_t, kSampleChunk> cells;
    const std::size_t count = end - begin;
    for (std::size_t s = 0; s < count; ++s) dirs[s] = stream.unitSphere();
    footprints->cellIndicesOf(dirs.data(), count, cells.data());
    int covered = 0;
    for (std::size_t s = 0; s < count; ++s) {
      if (footprints->countCoveringAt(dirs[s], cells[s], k) >= k) ++covered;
    }
    chunkCovered[begin / kSampleChunk] = covered;
  });
  const int covered =
      std::accumulate(chunkCovered.begin(), chunkCovered.end(), 0);
  return static_cast<double>(covered) / samples;
}

}  // namespace openspace
