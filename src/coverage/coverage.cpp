#include <openspace/coverage/coverage.hpp>

#include <algorithm>
#include <cmath>
#include <numeric>

#include <openspace/geo/error.hpp>
#include <openspace/geo/wgs84.hpp>
#include <openspace/orbit/visibility.hpp>

namespace openspace {

double capAreaFraction(double halfAngleRad) {
  if (halfAngleRad < 0.0) {
    throw InvalidArgumentError("capAreaFraction: negative half-angle");
  }
  return (1.0 - std::cos(std::min(halfAngleRad, std::numbers::pi))) / 2.0;
}

CoverageEstimate worstCaseOverlapCoverage(const std::vector<OrbitalElements>& sats,
                                          double tSeconds,
                                          double minElevationRad) {
  CoverageEstimate est;
  if (sats.empty()) return est;

  // Per-satellite footprint half-angles (altitude varies per orbit) and
  // sub-satellite unit vectors.
  std::vector<double> halfAngle(sats.size());
  std::vector<Vec3> dir(sats.size());
  for (std::size_t i = 0; i < sats.size(); ++i) {
    const Vec3 pos = positionEci(sats[i], tSeconds);
    const double alt = pos.norm() - wgs84::kMeanRadiusM;
    halfAngle[i] = footprintHalfAngleRad(std::max(alt, 1.0), minElevationRad);
    dir[i] = pos.normalized();
  }

  // Worst-case pairwise collapse: caps overlap when the central angle
  // between sub-points is below the sum of their half-angles; each
  // overlapping *pair* contributes the coverage of a single satellite
  // (greedy maximal matching over the overlap graph — a satellite is
  // absorbed into at most one pair, matching the paper's phrasing "two
  // satellites have completely overlapping ground coverage").
  std::vector<bool> absorbed(sats.size(), false);
  int effective = static_cast<int>(sats.size());
  for (std::size_t i = 0; i < sats.size(); ++i) {
    if (absorbed[i]) continue;
    for (std::size_t j = i + 1; j < sats.size(); ++j) {
      if (absorbed[j]) continue;
      if (angleBetween(dir[i], dir[j]) < halfAngle[i] + halfAngle[j]) {
        absorbed[i] = absorbed[j] = true;  // the pair counts as one cap
        --effective;
        break;
      }
    }
  }
  est.effectiveSatellites = effective;

  // Worst case: each component contributes a single cap (use the mean cap
  // fraction so heterogeneous altitudes average out).
  double meanCap = 0.0;
  for (const double h : halfAngle) meanCap += capAreaFraction(h);
  meanCap /= static_cast<double>(sats.size());
  est.coverageFraction = std::min(1.0, est.effectiveSatellites * meanCap);
  return est;
}

CoverageEstimate monteCarloCoverage(const std::vector<OrbitalElements>& sats,
                                    double tSeconds, double minElevationRad,
                                    int samples, Rng& rng) {
  if (samples <= 0) {
    throw InvalidArgumentError("monteCarloCoverage: samples must be > 0");
  }
  CoverageEstimate est;
  est.effectiveSatellites = static_cast<int>(sats.size());
  if (sats.empty()) return est;

  std::vector<Vec3> eci(sats.size());
  for (std::size_t i = 0; i < sats.size(); ++i) {
    eci[i] = positionEci(sats[i], tSeconds);
  }
  int covered = 0;
  for (int s = 0; s < samples; ++s) {
    // Sample in ECI directly: coverage of the sphere is rotation-invariant.
    const Vec3 point = rng.unitSphere() * wgs84::kMeanRadiusM;
    for (const Vec3& sat : eci) {
      if (elevationAngleRad(point, sat) >= minElevationRad) {
        ++covered;
        break;
      }
    }
  }
  est.coverageFraction = static_cast<double>(covered) / samples;
  return est;
}

double timeAveragedCoverage(const std::vector<OrbitalElements>& sats, double t0,
                            double t1, int steps, double minElevationRad,
                            int samplesPerStep, Rng& rng) {
  if (steps <= 0) {
    throw InvalidArgumentError("timeAveragedCoverage: steps must be > 0");
  }
  if (t1 < t0) throw InvalidArgumentError("timeAveragedCoverage: t1 < t0");
  double acc = 0.0;
  for (int i = 0; i < steps; ++i) {
    const double t =
        (steps == 1) ? t0 : t0 + (t1 - t0) * static_cast<double>(i) / (steps - 1);
    acc += monteCarloCoverage(sats, t, minElevationRad, samplesPerStep, rng)
               .coverageFraction;
  }
  return acc / steps;
}

double kFoldCoverage(const std::vector<OrbitalElements>& sats, double tSeconds,
                     double minElevationRad, int k, int samples, Rng& rng) {
  if (k <= 0) throw InvalidArgumentError("kFoldCoverage: k must be > 0");
  if (samples <= 0) {
    throw InvalidArgumentError("kFoldCoverage: samples must be > 0");
  }
  if (sats.empty()) return 0.0;
  std::vector<Vec3> eci(sats.size());
  for (std::size_t i = 0; i < sats.size(); ++i) {
    eci[i] = positionEci(sats[i], tSeconds);
  }
  int covered = 0;
  for (int s = 0; s < samples; ++s) {
    const Vec3 point = rng.unitSphere() * wgs84::kMeanRadiusM;
    int seen = 0;
    for (const Vec3& sat : eci) {
      if (elevationAngleRad(point, sat) >= minElevationRad && ++seen >= k) break;
    }
    if (seen >= k) ++covered;
  }
  return static_cast<double>(covered) / samples;
}

}  // namespace openspace
