// The brute-force coverage estimators, kept verbatim as the executable
// spec of the indexed paths in coverage.cpp (see legacy.hpp).
#include <openspace/coverage/legacy.hpp>

#include <algorithm>
#include <cmath>
#include <numeric>

#include <openspace/concurrency/parallel.hpp>
#include <openspace/geo/error.hpp>
#include <openspace/orbit/snapshot.hpp>

#include "coverage_sampling.hpp"

namespace openspace::legacy {

using coverage_detail::chunkRng;
using coverage_detail::kSampleChunk;

CoverageEstimate worstCaseOverlapCoverage(const std::vector<OrbitalElements>& sats,
                                          double tSeconds,
                                          double minElevationRad) {
  CoverageEstimate est;
  if (sats.empty()) return est;

  const auto snap = SnapshotCache::global().at(sats, tSeconds);
  const FootprintIndex footprints(*snap, minElevationRad);

  // Worst-case pairwise collapse: caps overlap when the central angle
  // between sub-points is below the sum of their half-angles; each
  // overlapping *pair* contributes the coverage of a single satellite
  // (greedy maximal matching over the overlap graph — a satellite is
  // absorbed into at most one pair, matching the paper's phrasing "two
  // satellites have completely overlapping ground coverage").
  std::vector<bool> absorbed(sats.size(), false);
  int effective = static_cast<int>(sats.size());
  for (std::size_t i = 0; i < sats.size(); ++i) {
    if (absorbed[i]) continue;
    for (std::size_t j = i + 1; j < sats.size(); ++j) {
      if (absorbed[j]) continue;
      if (angleBetween(footprints.direction(i), footprints.direction(j)) <
          footprints.halfAngleRad(i) + footprints.halfAngleRad(j)) {
        absorbed[i] = absorbed[j] = true;  // the pair counts as one cap
        --effective;
        break;
      }
    }
  }
  est.effectiveSatellites = effective;

  // Worst case: each component contributes a single cap (use the mean cap
  // fraction so heterogeneous altitudes average out).
  double meanCap = 0.0;
  for (std::size_t i = 0; i < sats.size(); ++i) {
    meanCap += capAreaFraction(footprints.halfAngleRad(i));
  }
  meanCap /= static_cast<double>(sats.size());
  est.coverageFraction = std::min(1.0, est.effectiveSatellites * meanCap);
  return est;
}

CoverageEstimate monteCarloCoverage(const std::vector<OrbitalElements>& sats,
                                    double tSeconds, double minElevationRad,
                                    int samples, Rng& rng) {
  if (samples <= 0) {
    throw InvalidArgumentError("monteCarloCoverage: samples must be > 0");
  }
  CoverageEstimate est;
  est.effectiveSatellites = static_cast<int>(sats.size());
  if (sats.empty()) return est;

  const auto snap = SnapshotCache::global().at(sats, tSeconds);
  const FootprintIndex footprints(*snap, minElevationRad);
  const std::uint64_t baseSeed = rng.engine()();

  // Sample in ECI directly: coverage of the sphere is rotation-invariant.
  const std::size_t n = static_cast<std::size_t>(samples);
  std::vector<int> chunkCovered((n + kSampleChunk - 1) / kSampleChunk, 0);
  parallelFor(n, kSampleChunk, [&](std::size_t begin, std::size_t end) {
    Rng stream = chunkRng(baseSeed, begin / kSampleChunk);
    int covered = 0;
    for (std::size_t s = begin; s < end; ++s) {
      if (footprints.anyCovers(stream.unitSphere())) ++covered;
    }
    chunkCovered[begin / kSampleChunk] = covered;
  });
  const int covered =
      std::accumulate(chunkCovered.begin(), chunkCovered.end(), 0);
  est.coverageFraction = static_cast<double>(covered) / samples;
  return est;
}

double timeAveragedCoverage(const std::vector<OrbitalElements>& sats, double t0S,
                            double t1S, int steps, double minElevationRad,
                            int samplesPerStep, Rng& rng) {
  if (steps <= 0) {
    throw InvalidArgumentError("timeAveragedCoverage: steps must be > 0");
  }
  if (t1S < t0S) throw InvalidArgumentError("timeAveragedCoverage: t1S < t0S");
  double acc = 0.0;
  for (int i = 0; i < steps; ++i) {
    const double t =
        (steps == 1) ? t0S : t0S + (t1S - t0S) * static_cast<double>(i) / (steps - 1);
    acc += legacy::monteCarloCoverage(sats, t, minElevationRad, samplesPerStep,
                                      rng)
               .coverageFraction;
  }
  return acc / steps;
}

double kFoldCoverage(const std::vector<OrbitalElements>& sats, double tSeconds,
                     double minElevationRad, int k, int samples, Rng& rng) {
  if (k <= 0) throw InvalidArgumentError("kFoldCoverage: k must be > 0");
  if (samples <= 0) {
    throw InvalidArgumentError("kFoldCoverage: samples must be > 0");
  }
  if (sats.empty()) return 0.0;

  const auto snap = SnapshotCache::global().at(sats, tSeconds);
  const FootprintIndex footprints(*snap, minElevationRad);
  const std::uint64_t baseSeed = rng.engine()();

  const std::size_t n = static_cast<std::size_t>(samples);
  std::vector<int> chunkCovered((n + kSampleChunk - 1) / kSampleChunk, 0);
  parallelFor(n, kSampleChunk, [&](std::size_t begin, std::size_t end) {
    Rng stream = chunkRng(baseSeed, begin / kSampleChunk);
    int covered = 0;
    for (std::size_t s = begin; s < end; ++s) {
      if (footprints.countCovering(stream.unitSphere(), k) >= k) ++covered;
    }
    chunkCovered[begin / kSampleChunk] = covered;
  });
  const int covered =
      std::accumulate(chunkCovered.begin(), chunkCovered.end(), 0);
  return static_cast<double>(covered) / samples;
}

}  // namespace openspace::legacy
