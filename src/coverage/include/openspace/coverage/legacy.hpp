// Brute-force coverage estimators: the executable specification.
//
// These are the pre-index implementations of the coverage estimators,
// preserved verbatim (same expressions, same iteration order, same RNG
// stream derivation) in openspace::legacy — the same pattern as
// routing/legacy.hpp: the optimized paths in coverage.hpp are
// property-tested bit-for-bit against these, and bench_coverage_index
// hard-gates indexed == brute checksums on every CI run.
//
// Every function here matches its coverage.hpp counterpart exactly:
// identical signature, identical result bits, identical throws. They test
// each surface sample / footprint pair against the whole fleet with no
// spatial pruning, which is what makes them slow — and obviously correct.
#pragma once

#include <vector>

#include <openspace/coverage/coverage.hpp>
#include <openspace/geo/rng.hpp>
#include <openspace/orbit/elements.hpp>

namespace openspace::legacy {

/// The paper's worst-case overlap model via the O(N^2) pairwise greedy
/// matching — the spec for the band-sweep in
/// openspace::worstCaseOverlapCoverage.
CoverageEstimate worstCaseOverlapCoverage(
    const std::vector<OrbitalElements>& sats, double tSeconds,
    double minElevationRad);

/// Monte-Carlo union coverage testing every sample against all satellites —
/// the spec for the indexed openspace::monteCarloCoverage.
CoverageEstimate monteCarloCoverage(const std::vector<OrbitalElements>& sats,
                                    double tSeconds, double minElevationRad,
                                    int samples, Rng& rng);

/// Time-averaged Monte-Carlo coverage over the brute estimator.
double timeAveragedCoverage(const std::vector<OrbitalElements>& sats, double t0S,
                            double t1S, int steps, double minElevationRad,
                            int samplesPerStep, Rng& rng);

/// k-fold coverage counting against all satellites per sample.
double kFoldCoverage(const std::vector<OrbitalElements>& sats, double tSeconds,
                     double minElevationRad, int k, int samples, Rng& rng);

}  // namespace openspace::legacy
