// The per-snapshot footprint index: every visibility consumer's spatial
// accelerator.
//
// FootprintIndex2 compiles one constellation snapshot + elevation mask into
// (a) the same per-satellite spherical-cap arrays the original orbit-layer
// FootprintIndex holds — direction, half-angle, cos(half-angle), built with
// the identical expressions so `covers()` is bit-for-bit the brute test —
// and (b) a SphericalCapIndex over conservatively padded caps that answers
// "which satellites could see this point" in O(candidates) instead of O(N).
//
// Two query families share the one index:
//  * surface-sample queries (Monte-Carlo coverage): unit ECI directions
//    tested against the exact cap predicate `dot >= cos(halfAngle)`;
//  * ground-site queries (association, handover, demand coverage): ECEF
//    sites tested against the exact `elevationAngleRad(site, satEcef) >=
//    mask` predicate. The registered cap radii are padded out to the
//    largest central angle any supported observer radius can see
//    (kMinObserverRadiusM at the mask), so the candidate set is a superset
//    for both predicates; sites outside the supported radius range fall
//    back to a full scan.
//
// Determinism contract (DESIGN.md §10): the index only *prunes* — every
// candidate is re-tested with the exact brute predicate, ties are broken
// by satellite index exactly as the brute ascending scans do, and the RNG
// draw sequence of the Monte-Carlo estimators is untouched. The brute
// implementations survive in openspace::legacy (coverage/legacy.hpp) as the
// executable spec the indexed paths are property-tested against.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <type_traits>
#include <vector>

#include <openspace/geo/geodetic.hpp>
#include <openspace/geo/spherical_index.hpp>
#include <openspace/geo/vec3.hpp>

namespace openspace {

class ConstellationSnapshot;

/// Spatially indexed footprint tests over one snapshot. Immutable after
/// construction; share freely across threads. Obtain via compiled() on any
/// hot path — construction costs one pass over the fleet plus the band
/// index build, amortized by a process-wide LRU.
class FootprintIndex2 {
 public:
  /// Lowest/highest observer radius (from Earth center) the ground-site
  /// pruning supports. Sites outside fall back to exact full scans: ~10 km
  /// below the WGS-84 polar radius to ~100 km above the equatorial radius
  /// covers every terrestrial and airborne terminal.
  static constexpr double kMinObserverRadiusM = 6'346'752.0;
  static constexpr double kMaxObserverRadiusM = 6'478'137.0;

  /// Compile the footprint index of `snapshot` at `minElevationRad`.
  /// Throws InvalidArgumentError for a mask outside [0, pi/2] (the
  /// footprintHalfAngleRad domain — same throw as the brute path).
  ///
  /// `motionMarginRad` widens only the *registered pruning radii* (never
  /// the exact cap predicate): with a margin of m, a ground-candidate
  /// query answered from this snapshot remains a superset of the exactly
  /// visible set at any time t' with angular drift <= m — i.e. for
  /// |t' - timeSeconds()| <= m / (max per-satellite angular rate + Earth
  /// rotation rate). The ground-visibility radii are additionally bounded
  /// at each orbit's apogee, so radial motion over the window is covered
  /// too. The session-plane epoch sweep compiles one margined index per
  /// epoch and serves every event time inside it from that single compile.
  /// Throws InvalidArgumentError for a negative or non-finite margin.
  FootprintIndex2(std::shared_ptr<const ConstellationSnapshot> snapshot,
                  double minElevationRad, double motionMarginRad = 0.0);

  std::size_t size() const noexcept { return direction_.size(); }
  double minElevationRad() const noexcept { return minElevationRad_; }
  double motionMarginRad() const noexcept { return motionMarginRad_; }

  /// Approximate resident size in bytes: the per-satellite cap arrays, the
  /// band index, and the certificate table (excludes the shared snapshot,
  /// which SnapshotCache accounts separately) — what the compiled() cache
  /// charges per entry.
  std::size_t approxBytes() const noexcept {
    return sizeof(*this) +
           direction_.size() * (sizeof(Vec3) + 2 * sizeof(double)) +
           capIndex_.approxBytes() +
           minCoverCount_.size() * sizeof(std::uint16_t);
  }
  const ConstellationSnapshot& snapshot() const noexcept { return *snapshot_; }

  double halfAngleRad(std::size_t i) const { return halfAngle_.at(i); }
  const Vec3& direction(std::size_t i) const { return direction_.at(i); }

  /// True if satellite i covers the surface point with unit direction
  /// `unitPoint` (ECI frame). Bit-identical to the orbit-layer
  /// FootprintIndex::covers — the executable-spec predicate.
  bool covers(const Vec3& unitPoint, std::size_t i) const noexcept {
    return unitPoint.dot(direction_[i]) >= cosHalfAngle_[i];
  }
  /// True if any satellite covers the point. Same boolean as the brute
  /// scan, found through the band index.
  bool anyCovers(const Vec3& unitPoint) const noexcept;
  /// Number of satellites covering the point, counting stops at
  /// `stopAfter` — same result as the brute ascending scan for every
  /// stopAfter, including the degenerate stopAfter <= 0 cases.
  int countCovering(const Vec3& unitPoint, int stopAfter) const noexcept;

  /// Batch cell mapping of `n` unit ECI directions, bit-identical to the
  /// scalar map the plain anyCovers/countCovering apply per query
  /// (SIMD-dispatched; see SphericalCapIndex::cellIndicesOf). The
  /// Monte-Carlo sweeps map each sample chunk in one call, then resolve
  /// per sample through the *At variants below.
  void cellIndicesOf(const Vec3* unitPoints, std::size_t n,
                     std::uint32_t* outCells) const;
  /// anyCovers with the point's cell precomputed: `cell` must be the
  /// value cellIndicesOf maps `unitPoint` to. Same boolean as anyCovers.
  bool anyCoversAt(const Vec3& unitPoint, std::uint32_t cell) const noexcept;
  /// countCovering with the point's cell precomputed; same contract.
  int countCoveringAt(const Vec3& unitPoint, std::uint32_t cell,
                      int stopAfter) const noexcept;

  /// True if at least one satellite is at or above the mask from the ECEF
  /// site — the exact elevationAngleRad predicate, candidates from the
  /// index.
  bool anyVisibleFrom(const Vec3& siteEcef) const;

  /// Closest at-or-above-mask satellite from the site (ties broken toward
  /// the lower index, matching the brute first-wins ascending scan);
  /// nullopt when none is visible. Bit-identical to
  /// ConstellationSnapshot::closestVisible at the same mask.
  std::optional<std::size_t> closestVisible(const Vec3& siteEcef) const;
  std::optional<std::size_t> closestVisible(const Geodetic& site) const;

  /// Visit a superset of the satellites visible from the ECEF site (each
  /// at most once, order unspecified). Callers apply their own exact
  /// predicate — this is the pruning hook the handover planner uses so its
  /// elevation test expression stays token-identical to the brute loop.
  /// As with SphericalCapIndex::forEachCandidate, a callback returning
  /// bool stops the scan early by returning true; void callbacks always
  /// see every candidate.
  template <typename Fn>
  void forEachGroundCandidate(const Vec3& siteEcef, Fn&& fn) const {
    const double radiusM = siteEcef.norm();
    if (!(radiusM >= kMinObserverRadiusM && radiusM <= kMaxObserverRadiusM)) {
      for (std::size_t i = 0; i < size(); ++i) {
        if constexpr (std::is_same_v<
                          std::invoke_result_t<Fn&, std::uint32_t>, bool>) {
          if (fn(static_cast<std::uint32_t>(i))) return;
        } else {
          fn(static_cast<std::uint32_t>(i));
        }
      }
      return;
    }
    // Rotate the site into the ECI frame of the cap centers (an exact
    // longitude shift about +Z; z is rotation-invariant) and query the
    // index with the unit direction.
    const double inv = 1.0 / radiusM;  // units: 1/m
    const Vec3 unitEci{
        (siteEcef.x * cosLonOffset_ - siteEcef.y * sinLonOffset_) * inv,
        (siteEcef.x * sinLonOffset_ + siteEcef.y * cosLonOffset_) * inv,
        siteEcef.z * inv};
    capIndex_.forEachCandidate(unitEci, fn);
  }

  /// Append (ascending, deduplicated, excluding i) every j whose footprint
  /// could overlap footprint i — a superset of {j : centralAngle(i, j) <
  /// halfAngle(i) + halfAngle(j)}. Drives the worst-case overlap band
  /// sweep that replaces the O(N^2) pair loop.
  void overlapCandidates(std::size_t i, std::vector<std::uint32_t>& out) const;

  /// Per-satellite ECEF position (the snapshot's array).
  const Vec3& ecef(std::size_t i) const;

  /// The compiled index of (snapshot, mask) from a process-wide LRU keyed
  /// by (elements hash, count, quantized t, mask bits): coverage sweeps,
  /// association batches and handover planning touching the same timestep
  /// compile the index once.
  static std::shared_ptr<const FootprintIndex2> compiled(
      std::shared_ptr<const ConstellationSnapshot> snapshot,
      double minElevationRad);

  /// compiled() with a motion margin on the pruning radii (see the
  /// constructor); the LRU key includes the margin bits, so margined and
  /// exact indexes of the same snapshot coexist in the cache.
  static std::shared_ptr<const FootprintIndex2> compiled(
      std::shared_ptr<const ConstellationSnapshot> snapshot,
      double minElevationRad, double motionMarginRad);

  /// Byte budget of the compiled() cache (see
  /// FleetEphemeris::setCompiledCacheByteBudget for the shared eviction
  /// contract: LRU-tail eviction while over the count cap or this budget,
  /// newest entry exempt, plain LRU order for equal-size entries). Returns
  /// the previous budget; pass 0 to shrink the cache to a single entry.
  static std::size_t setCompiledCacheByteBudget(std::size_t bytes);
  /// Summed approxBytes() of the currently cached compiled indexes.
  static std::size_t compiledCacheApproxBytes();

 private:
  std::shared_ptr<const ConstellationSnapshot> snapshot_;
  double minElevationRad_ = 0.0;
  double motionMarginRad_ = 0.0;
  // ECEF->ECI rotation about +Z at the snapshot time (lon_eci = lon_ecef +
  // omega * t), stored as the rotation's cosine/sine.
  double cosLonOffset_ = 1.0;  // units: dimensionless rotation cosine
  double sinLonOffset_ = 0.0;  // units: dimensionless rotation sine
  std::vector<Vec3> direction_;       ///< Unit sub-satellite directions (ECI).
  std::vector<double> cosHalfAngle_;  ///< cos(footprint half-angle).
  std::vector<double> halfAngle_;
  double maxHalfAngleRad_ = 0.0;
  SphericalCapIndex capIndex_;
  /// Whole-cell cover certificates, one per grid cell: the number of
  /// satellites (saturated at 2^16-1) whose *exact* footprint cap provably
  /// contains every unit direction mapping to the cell. anyCovers and
  /// countCovering answer most queries from this array alone — no dot
  /// products — which is where the Monte-Carlo sweep speedup comes from.
  /// Certificates shortcut only the unit-sphere cap predicate; ground-site
  /// queries always run the exact elevation test over the candidate list.
  std::vector<std::uint16_t> minCoverCount_;
};

}  // namespace openspace
