// Earth-coverage estimation (paper §4, Figure 2(c)).
//
// Two estimators:
//  * worstCaseOverlapCoverage — the paper's conservative model: "if there
//    is any overlap between a pair of satellite ranges, their effective
//    coverage will be reduced to that of a single satellite — that is, we
//    take the worst case where two satellites have completely overlapping
//    ground coverage." Each overlapping pair of footprints counts as a
//    single footprint (greedy maximal matching over the overlap graph).
//  * monteCarloCoverage — area-uniform surface sampling against the true
//    union of footprints (the optimistic/exact counterpart, provided for
//    the ablation DESIGN.md §5(1) calls out).
#pragma once

#include <vector>

#include <openspace/geo/rng.hpp>
#include <openspace/orbit/elements.hpp>

namespace openspace {

/// Fraction of the sphere covered by one spherical cap of half-angle
/// `halfAngleRad`: (1 - cos(halfAngle)) / 2.
double capAreaFraction(double halfAngleRad);

/// Coverage summary at one instant.
struct CoverageEstimate {
  double coverageFraction = 0.0;  ///< [0, 1].
  int effectiveSatellites = 0;    ///< After worst-case overlap collapse
                                  ///< (== satellite count for Monte Carlo).
};

/// The paper's worst-case overlap model at time `tSeconds`: satellites
/// whose footprints overlap merge into one effective footprint; coverage =
/// min(1, effectiveCount * capFraction). Throws InvalidArgumentError on a
/// bad elevation mask.
CoverageEstimate worstCaseOverlapCoverage(
    const std::vector<OrbitalElements>& sats, double tSeconds,
    double minElevationRad);

/// Monte-Carlo union coverage at time `tSeconds` using `samples`
/// area-uniform surface points. Deterministic given the Rng.
CoverageEstimate monteCarloCoverage(const std::vector<OrbitalElements>& sats,
                                    double tSeconds, double minElevationRad,
                                    int samples, Rng& rng);

/// Time-averaged Monte-Carlo coverage over [t0S, t1S] sampled at `steps`
/// instants (useful for constellations whose instantaneous coverage
/// oscillates as planes rotate).
double timeAveragedCoverage(const std::vector<OrbitalElements>& sats, double t0S,
                            double t1S, int steps, double minElevationRad,
                            int samplesPerStep, Rng& rng);

/// Fraction of `samples` surface points that see at least `k` satellites
/// (k-fold coverage: the redundancy §4 says extra satellites buy).
double kFoldCoverage(const std::vector<OrbitalElements>& sats, double tSeconds,
                     double minElevationRad, int k, int samples, Rng& rng);

}  // namespace openspace
