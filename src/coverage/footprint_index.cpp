#include <openspace/coverage/footprint_index.hpp>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <list>
#include <numbers>
#include <unordered_map>

#include <openspace/core/assert.hpp>
#include <openspace/core/thread_annotations.hpp>
#include <openspace/geo/error.hpp>
#include <openspace/geo/wgs84.hpp>
#include <openspace/orbit/snapshot.hpp>
#include <openspace/orbit/visibility.hpp>

namespace openspace {

namespace {

/// Semantic padding on the registered (pruning) cap radii, radians. The
/// exact predicates re-test every candidate, so the pad only has to exceed
/// the floating-point wiggle between the real-arithmetic visibility regions
/// and the index's build/query rounding — 1e-6 rad (~6 m of arc) is orders
/// of magnitude above either, and costs a negligible candidate surplus.
constexpr double kCapPadRad = 1e-6;

/// Extra padding on the ground-visibility radii: absorbs the spherical
/// approximation of the conservative observer-radius bound against the
/// WGS-84 sites the exact elevation predicate sees. 1e-3 rad ~ 6.4 km of
/// ground range, still only a few percent of a LEO footprint radius.
constexpr double kGroundPadRad = 1e-3;

/// Largest Earth-central angle at which an observer at `obsRadiusM` can see
/// a satellite at `satRadiusM` with elevation >= mask: from the sine rule
/// in the (center, observer, satellite) triangle,
///   lambda(r_o) = acos((r_o / r_s) cos e) - e,
/// which is strictly decreasing in r_o — so evaluating at the *smallest*
/// supported observer radius upper-bounds every supported site.
double groundVisibilityHalfAngleRad(double satRadiusM, double minElevationRad) {
  if (satRadiusM <= FootprintIndex2::kMaxObserverRadiusM) {
    // Satellite at or below possible observer radii (degenerate inputs,
    // negative altitudes): no useful bound — register everywhere.
    return std::numbers::pi;
  }
  const double arg = (FootprintIndex2::kMinObserverRadiusM / satRadiusM) *
                     std::cos(minElevationRad);
  return std::acos(std::clamp(arg, -1.0, 1.0)) - minElevationRad +
         kGroundPadRad;
}

/// Certificate eligibility ceiling on the exact cap half-angle, radians.
/// The corner test below proves "cap covers the whole cell" from the four
/// cell corners, which is sound only while the farthest cell point from
/// the cap center is attained at a corner. Latitude-circle cell edges
/// always attain their maximum at an endpoint; a meridian edge can hide an
/// interior maximum, but only at points >= pi/2 - (edge length)^2 / 8 away
/// from the cap center (DESIGN.md §10). With the index's minimum of 13
/// bands the longest meridian edge is ~0.56 rad, so half-angles up to
/// pi/2 - 0.05 are provably safe; we stop at pi/2 - 0.1 for margin. Every
/// physical footprint qualifies: footprintHalfAngleRad < pi/2 always, and
/// even a GEO footprint at mask 0 is ~1.42 rad.
constexpr double kMaxCertHalfAngleRad = std::numbers::pi / 2.0 - 0.1;

/// Margin (in cos space) the corner test must clear beyond the exact
/// cos(halfAngle) threshold: absorbs the corner-direction rounding and the
/// callers' not-quite-unit query vectors (|p| within ~1e-9 of 1). A cap
/// loses its certificate only for cells within ~1e-6 rad of its boundary,
/// where the candidate scan re-tests exactly anyway.
constexpr double kCertCosPad = 1e-6;

}  // namespace

FootprintIndex2::FootprintIndex2(
    std::shared_ptr<const ConstellationSnapshot> snapshot,
    double minElevationRad, double motionMarginRad)
    : snapshot_(std::move(snapshot)),
      minElevationRad_(minElevationRad),
      motionMarginRad_(motionMarginRad) {
  OPENSPACE_ASSERT(snapshot_ != nullptr, "footprint index needs a snapshot");
  if (!(motionMarginRad >= 0.0) || std::isinf(motionMarginRad)) {
    throw InvalidArgumentError(
        "FootprintIndex2: motion margin must be finite and >= 0");
  }
  const ConstellationSnapshot& snap = *snapshot_;
  const std::size_t n = snap.size();
  // ECEF ground queries rotate into the ECI frame of the cap centers: z is
  // invariant under the Earth's rotation about +Z, so one index serves both
  // frames with a longitude shift (lon_eci = lon_ecef + omega * t), applied
  // as a 2x2 rotation of (x, y) with this cosine/sine pair.
  const double lonOffsetRad = std::remainder(
      wgs84::kEarthRotationRadPerS * snap.timeSeconds(),
      2.0 * std::numbers::pi);
  cosLonOffset_ = std::cos(lonOffsetRad);
  sinLonOffset_ = std::sin(lonOffsetRad);
  direction_.resize(n);
  cosHalfAngle_.resize(n);
  halfAngle_.resize(n);
  std::vector<SphericalCapIndex::Cap> caps(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Token-identical to the orbit-layer FootprintIndex construction: these
    // three expressions define the exact cap predicate covers() applies.
    direction_[i] = snap.eci(i).normalized();
    halfAngle_[i] = footprintHalfAngleRad(std::max(snap.altitudeM(i), 1.0),
                                          minElevationRad);
    cosHalfAngle_[i] = std::cos(halfAngle_[i]);
    maxHalfAngleRad_ = std::max(maxHalfAngleRad_, halfAngle_[i]);
    // Registered (pruning) radius: wide enough for both exact predicates —
    // the cap test on unit surface points and the elevation test from any
    // supported observer radius. With a motion margin the ground radius is
    // evaluated at the orbit's apogee (lambda grows with the satellite
    // radius, so the apogee bound holds at every point of the pass) and
    // widened by the margin itself, covering the angular drift of both the
    // satellite and the observer over the margin's time window.
    double satRadiusM = snap.eci(i).norm();
    if (motionMarginRad > 0.0) {
      const OrbitalElements& el = snap.elements()[i];
      satRadiusM = std::max(
          satRadiusM, el.semiMajorAxisM * (1.0 + el.eccentricity));
    }
    caps[i].unitCenter = direction_[i];
    caps[i].halfAngleRad =
        std::max(halfAngle_[i] + kCapPadRad,
                 groundVisibilityHalfAngleRad(satRadiusM, minElevationRad)) +
        motionMarginRad;
  }
  capIndex_ = SphericalCapIndex(caps);

  // Whole-cell cover certificates: cap i certifies cell c when all four
  // (conservatively expanded) cell corners sit inside the *exact* footprint
  // cap with a safety margin — then every query direction mapping to c is
  // truly covered by i, and the corner test is sound because the farthest
  // cell point from the cap center is attained at a corner for half-angles
  // below kMaxCertHalfAngleRad (see the constant above). Certificates use
  // halfAngle_, never the padded registration radius: a padded radius
  // would certify points the exact predicate rejects.
  minCoverCount_.assign(capIndex_.cellCount(), 0);
  for (std::size_t cell = 0; cell < capIndex_.cellCount(); ++cell) {
    const auto corners = capIndex_.cellCornerDirs(cell);
    const auto [lo, hi] = capIndex_.cellEntryRange(cell);
    int count = 0;
    for (std::uint32_t e = lo; e < hi; ++e) {
      const std::uint32_t i = capIndex_.entries()[e];
      if (halfAngle_[i] > kMaxCertHalfAngleRad) continue;
      const double threshold = cosHalfAngle_[i] + kCertCosPad;
      bool all = true;
      for (const Vec3& corner : corners) {
        all = all && corner.dot(direction_[i]) >= threshold;
      }
      count += all ? 1 : 0;
    }
    minCoverCount_[cell] =
        static_cast<std::uint16_t>(std::min(count, 0xFFFF));
  }
}

bool FootprintIndex2::anyCovers(const Vec3& unitPoint) const noexcept {
  if (minCoverCount_.empty()) return false;
  return anyCoversAt(
      unitPoint, static_cast<std::uint32_t>(capIndex_.cellIndexOf(unitPoint)));
}

int FootprintIndex2::countCovering(const Vec3& unitPoint,
                                   int stopAfter) const noexcept {
  if (minCoverCount_.empty()) return 0;
  return countCoveringAt(
      unitPoint, static_cast<std::uint32_t>(capIndex_.cellIndexOf(unitPoint)),
      stopAfter);
}

void FootprintIndex2::cellIndicesOf(const Vec3* unitPoints, std::size_t n,
                                    std::uint32_t* outCells) const {
  capIndex_.cellIndicesOf(unitPoints, n, outCells);
}

bool FootprintIndex2::anyCoversAt(const Vec3& unitPoint,
                                  std::uint32_t cell) const noexcept {
  if (minCoverCount_.empty()) return false;
  // Certified cell: some cap provably contains every direction here, so
  // the brute scan would find a hit too — answer without any dot products.
  if (minCoverCount_[cell] > 0) return true;
  const auto [lo, hi] = capIndex_.cellEntryRange(cell);
  const auto& entries = capIndex_.entries();
  for (std::uint32_t e = lo; e < hi; ++e) {
    // Coverage is order-independent, so the scan may stop at the first
    // hit — the exact early-exit the brute any-scan performs.
    if (covers(unitPoint, entries[e])) return true;
  }
  return false;
}

int FootprintIndex2::countCoveringAt(const Vec3& unitPoint, std::uint32_t cell,
                                     int stopAfter) const noexcept {
  // Reproduce the brute scan's early-stop semantics exactly: it returns
  // min(total, stopAfter) for stopAfter >= 1 and, for stopAfter <= 0,
  // breaks on the first covering satellite (1 if any, else 0). Both are
  // order-independent, so early stops are safe wherever the result is
  // already forced.
  if (minCoverCount_.empty()) return 0;
  const int limit = std::max(stopAfter, 1);
  // At least minCoverCount_[cell] satellites cover every direction here;
  // when that alone reaches the stop limit the clamped count is forced.
  if (static_cast<int>(minCoverCount_[cell]) >= limit) return limit;
  const auto [lo, hi] = capIndex_.cellEntryRange(cell);
  const auto& entries = capIndex_.entries();
  int total = 0;
  for (std::uint32_t e = lo; e < hi; ++e) {
    total += covers(unitPoint, entries[e]) ? 1 : 0;
    if (total >= limit) break;
  }
  return total;
}

bool FootprintIndex2::anyVisibleFrom(const Vec3& siteEcef) const {
  bool any = false;
  forEachGroundCandidate(siteEcef, [&](std::uint32_t i) {
    any = elevationAngleRad(siteEcef, snapshot_->ecef(i)) >= minElevationRad_;
    // Visibility is order-independent; returning true stops the candidate
    // scan at the first visible satellite, like the brute scan's break.
    return any;
  });
  return any;
}

std::optional<std::size_t> FootprintIndex2::closestVisible(
    const Vec3& siteEcef) const {
  // The brute spec (ConstellationSnapshot::closestVisible) scans ascending
  // and keeps the first minimum; under the index's unspecified candidate
  // order the lexicographic (range, index) minimum selects the same
  // satellite.
  std::optional<std::size_t> best;
  double bestRange = std::numeric_limits<double>::infinity();
  forEachGroundCandidate(siteEcef, [&](std::uint32_t i) {
    if (elevationAngleRad(siteEcef, snapshot_->ecef(i)) < minElevationRad_) {
      return;
    }
    const double range = siteEcef.distanceTo(snapshot_->ecef(i));
    if (range < bestRange ||
        (range == bestRange && (!best || i < *best))) {
      bestRange = range;
      best = i;
    }
  });
  return best;
}

std::optional<std::size_t> FootprintIndex2::closestVisible(
    const Geodetic& site) const {
  return closestVisible(geodeticToEcef(site));
}

void FootprintIndex2::overlapCandidates(
    std::size_t i, std::vector<std::uint32_t>& out) const {
  capIndex_.neighborhoodCandidates(
      i, halfAngle_.at(i) + maxHalfAngleRad_ + kCapPadRad, out);
}

const Vec3& FootprintIndex2::ecef(std::size_t i) const {
  return snapshot_->ecef(i);
}

namespace {

/// Process-wide LRU of compiled footprint indexes, keyed by (elements
/// hash, count, quantized t, mask bits) — the SnapshotCache pattern one
/// layer up. Build happens outside the lock; a racing duplicate insert
/// resolves in favor of the first. Eviction is bounded by both an entry
/// count and an approximate byte budget (see
/// FootprintIndex2::setCompiledCacheByteBudget).
class FootprintIndexCache {
 public:
  std::shared_ptr<const FootprintIndex2> at(
      std::shared_ptr<const ConstellationSnapshot> snapshot,
      double minElevationRad, double motionMarginRad)
      OPENSPACE_EXCLUDES(mutex_) {
    Key key{};
    key.hash = snapshot->elementsHash();
    key.count = snapshot->size();
    key.tMicros = std::llround(snapshot->timeSeconds() * 1e6);
    std::memcpy(&key.maskBits, &minElevationRad, sizeof(key.maskBits));
    std::memcpy(&key.marginBits, &motionMarginRad, sizeof(key.marginBits));
    {
      MutexLock lock(mutex_);
      const auto it = index_.find(key);
      if (it != index_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second);
        return lru_.front().built;
      }
    }
    auto built = std::make_shared<const FootprintIndex2>(
        std::move(snapshot), minElevationRad, motionMarginRad);
    MutexLock lock(mutex_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      return lru_.front().built;
    }
    const std::size_t entryBytes = built->approxBytes();
    lru_.emplace_front(Entry{key, std::move(built), entryBytes});
    index_.emplace(key, lru_.begin());
    bytes_ += entryBytes;
    // The just-inserted entry is exempt so an oversized index still caches.
    while (lru_.size() > 1 &&
           (lru_.size() > kCapacity || bytes_ > byteBudget_)) {
      bytes_ -= lru_.back().bytes;
      index_.erase(lru_.back().key);
      lru_.pop_back();
    }
    return lru_.front().built;
  }

  std::size_t setByteBudget(std::size_t budget) OPENSPACE_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    const std::size_t previous = byteBudget_;
    byteBudget_ = budget == 0 ? 1 : budget;
    while (lru_.size() > 1 && bytes_ > byteBudget_) {
      bytes_ -= lru_.back().bytes;
      index_.erase(lru_.back().key);
      lru_.pop_back();
    }
    return previous;
  }

  std::size_t approxBytes() const OPENSPACE_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return bytes_;
  }

  static FootprintIndexCache& global() {
    static FootprintIndexCache cache;
    return cache;
  }

 private:
  struct Key {
    std::uint64_t hash;
    std::uint64_t count;
    std::int64_t tMicros;
    std::uint64_t maskBits;
    std::uint64_t marginBits;
    bool operator==(const Key&) const noexcept = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      std::uint64_t h = k.hash;
      h ^= k.count * 0x9E3779B97F4A7C15ull;
      h ^= static_cast<std::uint64_t>(k.tMicros) * 0xD1B54A32D192ED03ull;
      h ^= k.maskBits * 0x2545F4914F6CDD1Dull;
      h ^= k.marginBits * 0x94D049BB133111EBull;
      h ^= h >> 32;
      return static_cast<std::size_t>(h);
    }
  };
  struct Entry {
    Key key;
    std::shared_ptr<const FootprintIndex2> built;
    std::size_t bytes = 0;
  };

  static constexpr std::size_t kCapacity = 32;
  static constexpr std::size_t kDefaultByteBudget =
      std::size_t{256} * 1024 * 1024;
  mutable Mutex mutex_;
  std::list<Entry> lru_ OPENSPACE_GUARDED_BY(mutex_);
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index_
      OPENSPACE_GUARDED_BY(mutex_);
  std::size_t bytes_ OPENSPACE_GUARDED_BY(mutex_) = 0;
  std::size_t byteBudget_ OPENSPACE_GUARDED_BY(mutex_) = kDefaultByteBudget;
};

}  // namespace

std::shared_ptr<const FootprintIndex2> FootprintIndex2::compiled(
    std::shared_ptr<const ConstellationSnapshot> snapshot,
    double minElevationRad) {
  return compiled(std::move(snapshot), minElevationRad, 0.0);
}

std::shared_ptr<const FootprintIndex2> FootprintIndex2::compiled(
    std::shared_ptr<const ConstellationSnapshot> snapshot,
    double minElevationRad, double motionMarginRad) {
  OPENSPACE_ASSERT(snapshot != nullptr, "compiled() needs a snapshot");
  return FootprintIndexCache::global().at(std::move(snapshot),
                                          minElevationRad, motionMarginRad);
}

std::size_t FootprintIndex2::setCompiledCacheByteBudget(std::size_t bytes) {
  return FootprintIndexCache::global().setByteBudget(bytes);
}

std::size_t FootprintIndex2::compiledCacheApproxBytes() {
  return FootprintIndexCache::global().approxBytes();
}

}  // namespace openspace
