// The single translation unit in the library that propagates a whole
// constellation: every other layer gets its "all satellites at time t"
// view through ConstellationSnapshot / SnapshotCache.
#include <openspace/orbit/snapshot.hpp>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <limits>

#include <openspace/concurrency/parallel.hpp>
#include <openspace/core/assert.hpp>
#include <openspace/core/scratch.hpp>
#include <openspace/geo/error.hpp>
#include <openspace/geo/wgs84.hpp>
#include <openspace/orbit/ephemeris.hpp>
#include <openspace/orbit/propagation_batch.hpp>
#include <openspace/orbit/visibility.hpp>

namespace openspace {

namespace {

constexpr std::size_t kAdjacencyChunk = 16;

// Word-wise FNV-1a step: one xor-multiply per double. The snapshot cache
// only needs collision resistance across distinct constellations, and the
// hash sits on the hot path of every uncached snapshot construction.
std::uint64_t fnv1a(std::uint64_t h, double v) noexcept {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  h ^= bits;
  h *= 0x100000001B3ull;
  return h;
}

std::vector<OrbitalElements> elementsOf(const EphemerisService& ephemeris) {
  std::vector<OrbitalElements> elements;
  elements.reserve(ephemeris.size());
  for (const SatelliteId sid : ephemeris.satellites()) {
    elements.push_back(ephemeris.record(sid).elements);
  }
  return elements;
}

/// Pack integer grid-cell coordinates into one map key (cells are offset
/// into the non-negative range; 21 bits per axis is ample for LEO shells
/// divided by any usable ISL range).
std::int64_t cellKey(std::int64_t cx, std::int64_t cy, std::int64_t cz) noexcept {
  constexpr std::int64_t kOffset = 1 << 20;
  return ((cx + kOffset) << 42) | ((cy + kOffset) << 21) | (cz + kOffset);
}

/// True iff a grid coordinate fits the 21-bit per-axis budget of cellKey,
/// with one cell of headroom on each side for the ±1 neighbor lookups.
/// Coordinates outside this range would silently alias across axes.
bool cellCoordFits(std::int64_t c) noexcept {
  constexpr std::int64_t kMax = (1 << 20) - 2;
  return c >= -kMax && c <= kMax;
}

}  // namespace

std::uint64_t constellationHash(const std::vector<OrbitalElements>& elements) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const OrbitalElements& el : elements) {
    h = fnv1a(h, el.semiMajorAxisM);
    h = fnv1a(h, el.eccentricity);
    h = fnv1a(h, el.inclinationRad);
    h = fnv1a(h, el.raanRad);
    h = fnv1a(h, el.argPerigeeRad);
    h = fnv1a(h, el.meanAnomalyAtEpochRad);
  }
  return h;
}

ConstellationSnapshot::ConstellationSnapshot(
    std::vector<OrbitalElements> elements, double tSeconds)
    : elements_(std::move(elements)),
      tS_(tSeconds),
      hash_(constellationHash(elements_)) {
  propagateAll();
}

ConstellationSnapshot::ConstellationSnapshot(const EphemerisService& ephemeris,
                                             double tSeconds)
    : ConstellationSnapshot(elementsOf(ephemeris), tSeconds) {}

void ConstellationSnapshot::propagateAll() {
  // The SoA batch kernel (orbit/propagation_batch.hpp) evaluates the whole
  // fleet over flat precomputed arrays — bit-identical to the scalar
  // positionEci/eciToEcef pair per satellite, but without re-deriving the
  // time-invariant terms per call. The compiled-fleet cache makes repeated
  // snapshots of one constellation (temporal router grids, coverage
  // estimators, sweeps) pay the compile once.
  const std::shared_ptr<const FleetEphemeris> fleet =
      FleetEphemeris::compiled(elements_, hash_);
  fleet->positionsAt(tS_, eci_, ecef_);
}

double ConstellationSnapshot::altitudeM(std::size_t i) const {
  OPENSPACE_ASSERT(i < eci_.size(), "satellite index within the snapshot");
  return eci_.at(i).norm() - wgs84::kMeanRadiusM;
}

std::optional<std::size_t> ConstellationSnapshot::closestVisible(
    const Geodetic& site, double minElevationRad) const {
  return closestVisible(geodeticToEcef(site), minElevationRad);
}

std::optional<std::size_t> ConstellationSnapshot::closestVisible(
    const Vec3& siteEcef, double minElevationRad) const {
  OPENSPACE_ASSERT(ecef_.size() == elements_.size(),
                   "snapshot fully propagated before visibility queries");
  std::optional<std::size_t> best;
  double bestRange = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < ecef_.size(); ++i) {
    if (elevationAngleRad(siteEcef, ecef_[i]) < minElevationRad) continue;
    const double range = siteEcef.distanceTo(ecef_[i]);
    if (range < bestRange) {
      bestRange = range;
      best = i;
    }
  }
  return best;
}

std::shared_ptr<const IslTopology> ConstellationSnapshot::islTopology(
    double maxRangeM, double losClearanceM) const {
  if (maxRangeM <= 0.0) {
    throw InvalidArgumentError("islTopology: maxRangeM must be > 0");
  }
  {
    MutexLock lock(islMutex_);
    if (isl_ && isl_->maxRangeM == maxRangeM &&
        isl_->losClearanceM == losClearanceM) {
      return isl_;
    }
  }

  auto topo = std::make_shared<IslTopology>();
  topo->maxRangeM = maxRangeM;
  topo->losClearanceM = losClearanceM;
  const std::size_t n = eci_.size();
  topo->adjacency.resize(n);
  // Fleets of <= kIslAllPairsMaxSats (snapshot.hpp) take the all-pairs
  // scan; the output is identical to the grid's (same edge predicate,
  // neighbors in index order either way — pinned by the boundary tests).
  const auto bruteForce = [&] {
    parallelFor(n, kAdjacencyChunk, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        auto& adj = topo->adjacency[i];
        for (std::size_t j = 0; j < n; ++j) {
          if (j == i) continue;
          const double d = eci_[i].distanceTo(eci_[j]);
          if (d <= maxRangeM && lineOfSightClear(eci_[i], eci_[j], losClearanceM)) {
            adj.emplace_back(j, d);
          }
        }
      }
    });
  };
  // Sorted-bucket spatial pruning for larger fleets: bin satellites into
  // grid cells of side >= maxRangeM; any in-range pair lies in the same
  // or an adjacent cell, so each satellite scans at most 27 buckets
  // instead of all n. The cell side starts at maxRangeM and is clamped
  // *up* until every coordinate fits cellKey's 21-bit per-axis budget —
  // a larger cell only widens the candidate sets (correctness needs just
  // side >= maxRangeM), so the all-pairs fallback below is unreachable
  // for any finite position set; it survives only as a defensive guard
  // against non-finite positions (pinned at scale by tests/test_snapshot
  // .cpp's tiny-range grid test).
  bool gridFits = n > kIslAllPairsMaxSats;
  std::vector<std::array<std::int64_t, 3>> coords;
  if (gridFits) {
    double maxAbsM = 0.0;
    for (const Vec3& p : eci_) {
      maxAbsM = std::max({maxAbsM, std::abs(p.x), std::abs(p.y),
                          std::abs(p.z)});
    }
    constexpr double kMaxCoord = static_cast<double>((1 << 20) - 3);
    double cell = maxRangeM;
    if (std::isfinite(maxAbsM) && maxAbsM / cell > kMaxCoord) {
      cell = maxAbsM / kMaxCoord;
    }
    coords.resize(n);
    for (std::size_t i = 0; i < n && gridFits; ++i) {
      coords[i] = {static_cast<std::int64_t>(std::floor(eci_[i].x / cell)),
                   static_cast<std::int64_t>(std::floor(eci_[i].y / cell)),
                   static_cast<std::int64_t>(std::floor(eci_[i].z / cell))};
      gridFits = cellCoordFits(coords[i][0]) && cellCoordFits(coords[i][1]) &&
                 cellCoordFits(coords[i][2]);
    }
  }
  if (n > 1 && !gridFits) {
    bruteForce();
  } else if (n > 1) {
    // Flat CSR buckets instead of a node-based hash map: one (key, index)
    // sort builds the whole structure with zero per-bucket allocations,
    // and neighbor lookups are binary searches over a contiguous sorted
    // key array — at 66k satellites this is the difference between the
    // topology stage scaling and the map's allocator dominating it.
    std::vector<std::pair<std::int64_t, std::uint32_t>> order(n);
    for (std::size_t i = 0; i < n; ++i) {
      order[i] = {cellKey(coords[i][0], coords[i][1], coords[i][2]),
                  static_cast<std::uint32_t>(i)};
    }
    std::sort(order.begin(), order.end());
    std::vector<std::int64_t> bucketKeys;
    std::vector<std::uint32_t> bucketStart;
    for (std::size_t e = 0; e < n; ++e) {
      if (e == 0 || order[e].first != order[e - 1].first) {
        bucketKeys.push_back(order[e].first);
        bucketStart.push_back(static_cast<std::uint32_t>(e));
      }
    }
    bucketStart.push_back(static_cast<std::uint32_t>(n));
    const auto bucketOf = [&](std::int64_t key)
        -> std::pair<std::uint32_t, std::uint32_t> {
      const auto it =
          std::lower_bound(bucketKeys.begin(), bucketKeys.end(), key);
      if (it == bucketKeys.end() || *it != key) return {0, 0};
      const std::size_t b =
          static_cast<std::size_t>(it - bucketKeys.begin());
      return {bucketStart[b], bucketStart[b + 1]};
    };
    parallelFor(n, kAdjacencyChunk, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        auto& adj = topo->adjacency[i];
        for (std::int64_t dx = -1; dx <= 1; ++dx) {
          for (std::int64_t dy = -1; dy <= 1; ++dy) {
            for (std::int64_t dz = -1; dz <= 1; ++dz) {
              const auto [lo, hi] = bucketOf(cellKey(
                  coords[i][0] + dx, coords[i][1] + dy, coords[i][2] + dz));
              for (std::uint32_t e = lo; e < hi; ++e) {
                const std::size_t j = order[e].second;
                OPENSPACE_ASSERT(j < n, "bucket entries index the fleet");
                if (j == i) continue;
                const double d = eci_[i].distanceTo(eci_[j]);
                if (d <= maxRangeM &&
                    lineOfSightClear(eci_[i], eci_[j], losClearanceM)) {
                  adj.emplace_back(j, d);
                }
              }
            }
          }
        }
        std::sort(adj.begin(), adj.end());
      }
    });
  }
  std::size_t degreeSum = 0;
  for (const auto& adj : topo->adjacency) degreeSum += adj.size();
  topo->linkCount = degreeSum / 2;

  MutexLock lock(islMutex_);
  isl_ = std::move(topo);
  return isl_;
}

std::optional<std::pair<double, int>> ConstellationSnapshot::shortestIslPath(
    std::size_t src, std::size_t dst, double maxRangeM,
    double losClearanceM) const {
  const std::size_t n = eci_.size();
  if (src >= n || dst >= n) {
    throw InvalidArgumentError("shortestIslPath: satellite index out of range");
  }
  if (src == dst) return std::make_pair(0.0, 0);
  const std::shared_ptr<const IslTopology> topo =
      islTopology(maxRangeM, losClearanceM);

  // Per-thread reusable scratch (core/scratch.hpp): the stamped arrays reset
  // in O(1) and the heap keeps its capacity, so steady-state queries — e.g.
  // the fig2 Monte Carlo sweep issuing one per trial — allocate nothing.
  thread_local StampedArray<double> dist;
  thread_local StampedArray<int> hops;
  thread_local DaryHeap pq;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  OPENSPACE_ASSERT(n < 0xFFFFFFFFu, "satellite indices fit the heap's 32 bits");
  dist.reset(n);
  hops.reset(n);
  pq.clear();
  dist.set(src, 0.0);
  hops.set(src, 0);
  pq.push(0.0, static_cast<std::uint32_t>(src));
  while (!pq.empty()) {
    const auto [d, u] = pq.pop();
    if (d > dist.getOr(u, kInf)) continue;
    if (u == dst) break;
    const int throughHops = hops.getOr(u, 0) + 1;
    for (const auto& [v, w] : topo->adjacency[u]) {
      const double nd = d + w;
      if (nd < dist.getOr(v, kInf)) {
        dist.set(v, nd);
        hops.set(v, throughHops);
        pq.push(nd, static_cast<std::uint32_t>(v));
      }
    }
  }
  const double dstDist = dist.getOr(dst, kInf);
  if (std::isinf(dstDist)) return std::nullopt;
  return std::make_pair(dstDist, hops.getOr(dst, 0));
}

FootprintIndex::FootprintIndex(const ConstellationSnapshot& snapshot,
                               double minElevationRad) {
  const std::size_t n = snapshot.size();
  direction_.resize(n);
  cosHalfAngle_.resize(n);
  halfAngle_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    direction_[i] = snapshot.eci(i).normalized();
    halfAngle_[i] = footprintHalfAngleRad(std::max(snapshot.altitudeM(i), 1.0),
                                          minElevationRad);
    cosHalfAngle_[i] = std::cos(halfAngle_[i]);
  }
}

bool FootprintIndex::anyCovers(const Vec3& unitPoint) const noexcept {
  for (std::size_t i = 0; i < direction_.size(); ++i) {
    if (covers(unitPoint, i)) return true;
  }
  return false;
}

int FootprintIndex::countCovering(const Vec3& unitPoint,
                                  int stopAfter) const noexcept {
  int seen = 0;
  for (std::size_t i = 0; i < direction_.size(); ++i) {
    if (covers(unitPoint, i) && ++seen >= stopAfter) break;
  }
  return seen;
}

SnapshotCache::SnapshotCache(std::size_t capacity, std::size_t byteBudget)
    : capacity_(capacity == 0 ? 1 : capacity),
      byteBudget_(byteBudget == 0 ? 1 : byteBudget) {}

std::size_t SnapshotCache::KeyHash::operator()(const Key& k) const noexcept {
  std::uint64_t h = k.hash;
  h ^= k.count * 0x9E3779B97F4A7C15ull;
  h ^= static_cast<std::uint64_t>(k.tMicros) * 0xD1B54A32D192ED03ull;
  h ^= h >> 32;
  return static_cast<std::size_t>(h);
}

std::shared_ptr<const ConstellationSnapshot> SnapshotCache::at(
    const std::vector<OrbitalElements>& elements, double tSeconds) {
  const Key key{constellationHash(elements), elements.size(),
                std::llround(tSeconds * 1e6)};
  // Probe first so a hit never pays the O(n) element copy; the copy is
  // materialized only on the miss path that actually builds a snapshot.
  if (auto hit = probe(key)) return hit;
  return insert(key, std::vector<OrbitalElements>(elements), tSeconds);
}

std::shared_ptr<const ConstellationSnapshot> SnapshotCache::at(
    const EphemerisService& ephemeris, double tSeconds) {
  std::vector<OrbitalElements> elements = elementsOf(ephemeris);
  const Key key{constellationHash(elements), elements.size(),
                std::llround(tSeconds * 1e6)};
  if (auto hit = probe(key)) return hit;
  return insert(key, std::move(elements), tSeconds);
}

std::shared_ptr<const ConstellationSnapshot> SnapshotCache::probe(
    const Key& key) {
  MutexLock lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    ++hits_;
    return lru_.front().snapshot;
  }
  ++misses_;
  return nullptr;
}

std::shared_ptr<const ConstellationSnapshot> SnapshotCache::insert(
    const Key& key, std::vector<OrbitalElements>&& elements, double tSeconds) {
  // Propagate outside the lock so concurrent misses on different
  // constellations do not serialize; a racing duplicate insert is resolved
  // below in favor of the first.
  auto snapshot =
      std::make_shared<const ConstellationSnapshot>(std::move(elements), tSeconds);
  MutexLock lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return lru_.front().snapshot;
  }
  const std::size_t entryBytes = snapshot->approxBytes();
  lru_.emplace_front(Entry{key, std::move(snapshot), entryBytes});
  index_.emplace(key, lru_.begin());
  bytes_ += entryBytes;
  // Evict from the LRU tail while over either limit; the entry just
  // inserted is exempt so an oversized snapshot still caches (the budget
  // then holds exactly one entry).
  while (lru_.size() > 1 &&
         (lru_.size() > capacity_ || bytes_ > byteBudget_)) {
    bytes_ -= lru_.back().bytes;
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
  return lru_.front().snapshot;
}

std::size_t SnapshotCache::size() const {
  MutexLock lock(mutex_);
  return lru_.size();
}

std::size_t SnapshotCache::approxBytes() const {
  MutexLock lock(mutex_);
  return bytes_;
}

std::size_t SnapshotCache::hits() const {
  MutexLock lock(mutex_);
  return hits_;
}

std::size_t SnapshotCache::misses() const {
  MutexLock lock(mutex_);
  return misses_;
}

void SnapshotCache::clear() {
  MutexLock lock(mutex_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
  hits_ = 0;
  misses_ = 0;
}

SnapshotCache& SnapshotCache::global() {
  static SnapshotCache cache(32);
  return cache;
}

}  // namespace openspace
