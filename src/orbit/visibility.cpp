#include <openspace/orbit/visibility.hpp>

#include <cmath>
#include <numbers>

#include <openspace/geo/error.hpp>
#include <openspace/geo/wgs84.hpp>

namespace openspace {

namespace {
constexpr double kHalfPi = std::numbers::pi / 2.0;

void checkFootprintArgs(double altitudeM, double minElevationRad) {
  if (altitudeM <= 0.0) {
    throw InvalidArgumentError("footprint: altitude must be > 0");
  }
  if (minElevationRad < 0.0 || minElevationRad > kHalfPi) {
    throw InvalidArgumentError("footprint: elevation must be in [0, pi/2]");
  }
}
}  // namespace

double footprintHalfAngleRad(double altitudeM, double minElevationRad) {
  checkFootprintArgs(altitudeM, minElevationRad);
  const double re = wgs84::kMeanRadiusM;
  const double ratio = re / (re + altitudeM) * std::cos(minElevationRad);
  return std::acos(ratio) - minElevationRad;
}

double maxSlantRangeM(double altitudeM, double minElevationRad) {
  checkFootprintArgs(altitudeM, minElevationRad);
  // Law of cosines in the Earth-center / ground / satellite triangle with
  // the central angle lambda between ground point and sub-satellite point.
  const double re = wgs84::kMeanRadiusM;
  const double rs = re + altitudeM;
  const double lambda = footprintHalfAngleRad(altitudeM, minElevationRad);
  return std::sqrt(re * re + rs * rs - 2.0 * re * rs * std::cos(lambda));
}

double elevationFrom(const Vec3& satEci, const Geodetic& ground, double tSeconds) {
  const Vec3 groundEcef = geodeticToEcef(ground);
  const Vec3 satEcef = eciToEcef(satEci, tSeconds);
  return elevationAngleRad(groundEcef, satEcef);
}

bool isVisible(const Vec3& satEci, const Geodetic& ground, double tSeconds,
               double minElevationRad) {
  return elevationFrom(satEci, ground, tSeconds) >= minElevationRad;
}

std::vector<ContactWindow> contactWindows(const OrbitalElements& el,
                                          const Geodetic& ground, double t0S,
                                          double t1S, double minElevationRad,
                                          double stepS) {
  if (stepS <= 0.0) throw InvalidArgumentError("contactWindows: step must be > 0");
  if (t1S < t0S) throw InvalidArgumentError("contactWindows: t1S < t0S");

  const auto above = [&](double t) {
    return elevationFrom(positionEci(el, t), ground, t) >= minElevationRad;
  };
  // Bisect a rise/set edge between tLo (state `lo`) and tHi to ~1 ms.
  const auto refine = [&](double tLo, double tHi, bool lo) {
    for (int i = 0; i < 40 && (tHi - tLo) > 1e-3; ++i) {
      const double mid = 0.5 * (tLo + tHi);
      if (above(mid) == lo) {
        tLo = mid;
      } else {
        tHi = mid;
      }
    }
    return 0.5 * (tLo + tHi);
  };

  std::vector<ContactWindow> windows;
  bool prev = above(t0S);
  double windowStart = prev ? t0S : 0.0;
  double prevT = t0S;
  for (double t = t0S + stepS; t < t1S + stepS; t += stepS) {
    const double tc = std::min(t, t1S);
    const bool cur = above(tc);
    if (cur && !prev) {
      windowStart = refine(prevT, tc, /*lo=*/false);
    } else if (!cur && prev) {
      windows.push_back({windowStart, refine(prevT, tc, /*lo=*/true)});
    }
    prev = cur;
    prevT = tc;
    if (tc >= t1S) break;
  }
  if (prev) windows.push_back({windowStart, t1S});
  return windows;
}

}  // namespace openspace
