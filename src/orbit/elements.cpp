#include <openspace/orbit/elements.hpp>

#include <cmath>
#include <numbers>

#include <openspace/geo/error.hpp>
#include <openspace/geo/geodetic.hpp>
#include <openspace/geo/wgs84.hpp>
#include <openspace/orbit/propagation_batch.hpp>

namespace openspace {

namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;
}  // namespace

OrbitalElements OrbitalElements::circular(double altitudeM, double inclinationRad,
                                          double raanRad, double phaseRad) {
  if (altitudeM <= 0.0) {
    throw InvalidArgumentError("OrbitalElements::circular: altitude must be > 0");
  }
  OrbitalElements el;
  el.semiMajorAxisM = wgs84::kMeanRadiusM + altitudeM;
  el.eccentricity = 0.0;
  el.inclinationRad = inclinationRad;
  el.raanRad = raanRad;
  el.argPerigeeRad = 0.0;
  el.meanAnomalyAtEpochRad = phaseRad;
  return el;
}

double OrbitalElements::periodS() const {
  return kTwoPi * std::sqrt(std::pow(semiMajorAxisM, 3) / wgs84::kMuM3PerS2);
}

double OrbitalElements::meanMotionRadPerS() const {
  return std::sqrt(wgs84::kMuM3PerS2 / std::pow(semiMajorAxisM, 3));
}

double OrbitalElements::perigeeAltitudeM() const {
  return semiMajorAxisM * (1.0 - eccentricity) - wgs84::kMeanRadiusM;
}

double solveKeplerReduced(double reducedMeanAnomalyRad, double eccentricity) {
  // Newton's method on f(E) = E - e sin E - M. Starting from E = M (or pi
  // for high e) converges quadratically for most of the (e, M) plane; 20
  // iterations bounds the loop.
  const double e = eccentricity;
  const double m = reducedMeanAnomalyRad;
  double guess = (e > 0.8) ? std::numbers::pi : m;
  for (int i = 0; i < 20; ++i) {
    const double f = guess - e * std::sin(guess) - m;
    const double fp = 1.0 - e * std::cos(guess);
    const double step = f / fp;
    guess -= step;
    if (std::abs(step) < 1e-14) return guess;
  }
  // Plain Newton oscillates for e ~> 0.82 with M near +-pi (the pi start
  // lands where f' = 1 - e cos E is tiny and overshoots). f is strictly
  // increasing with the unique root bracketed by [M - e, M + e]
  // (f(M - e) <= 0 <= f(M + e)), so a bisection-safeguarded Newton always
  // converges: any Newton step leaving the bracket is replaced by its
  // midpoint, and each iteration shrinks the bracket.
  double lo = m - e;
  double hi = m + e;
  guess = 0.5 * (lo + hi);
  for (int i = 0; i < 200; ++i) {
    const double f = guess - e * std::sin(guess) - m;
    (f > 0.0 ? hi : lo) = guess;
    const double fp = 1.0 - e * std::cos(guess);
    double next = guess - f / fp;
    if (!(next > lo && next < hi)) next = 0.5 * (lo + hi);
    const double step = next - guess;
    guess = next;
    if (std::abs(step) < 1e-14) break;
  }
  return guess;
}

double solveKepler(double meanAnomalyRad, double eccentricity) {
  if (eccentricity < 0.0 || eccentricity >= 1.0) {
    throw InvalidArgumentError("solveKepler: eccentricity must be in [0, 1)");
  }
  if (eccentricity == 0.0) return meanAnomalyRad;
  const double m = std::remainder(meanAnomalyRad, kTwoPi);
  // Return in the same revolution as the input mean anomaly.
  return solveKeplerReduced(m, eccentricity) + (meanAnomalyRad - m);
}

StateVector propagate(const OrbitalElements& el, double tSeconds) {
  const double n = el.meanMotionRadPerS();
  const double m = el.meanAnomalyAtEpochRad + n * tSeconds;
  const double ecc = el.eccentricity;
  const double eAnom = solveKepler(m, ecc);

  // Perifocal coordinates.
  const double a = el.semiMajorAxisM;
  const double cosE = std::cos(eAnom);
  const double sinE = std::sin(eAnom);
  const double r = a * (1.0 - ecc * cosE);
  const double xP = a * (cosE - ecc);
  const double yP = a * std::sqrt(1.0 - ecc * ecc) * sinE;
  const double rDotCoef = std::sqrt(wgs84::kMuM3PerS2 * a) / r;
  const double vxP = -rDotCoef * sinE;
  const double vyP = rDotCoef * std::sqrt(1.0 - ecc * ecc) * cosE;

  // Rotate perifocal -> ECI: Rz(raan) * Rx(incl) * Rz(argPerigee).
  const double cO = std::cos(el.raanRad), sO = std::sin(el.raanRad);
  const double cI = std::cos(el.inclinationRad), sI = std::sin(el.inclinationRad);
  const double cW = std::cos(el.argPerigeeRad), sW = std::sin(el.argPerigeeRad);

  const double r11 = cO * cW - sO * sW * cI;
  const double r12 = -cO * sW - sO * cW * cI;
  const double r21 = sO * cW + cO * sW * cI;
  const double r22 = -sO * sW + cO * cW * cI;
  const double r31 = sW * sI;
  const double r32 = cW * sI;

  StateVector sv;
  sv.positionM = {r11 * xP + r12 * yP, r21 * xP + r22 * yP, r31 * xP + r32 * yP};
  sv.velocityMps = {r11 * vxP + r12 * vyP, r21 * vxP + r22 * vyP,
                    r31 * vxP + r32 * vyP};
  return sv;
}

Vec3 positionEci(const OrbitalElements& el, double tSeconds) {
  return propagate(el, tSeconds).positionM;
}

std::vector<GroundTrackPoint> groundTrack(const OrbitalElements& el, double t0S,
                                          double t1S, double stepS) {
  if (stepS <= 0.0) throw InvalidArgumentError("groundTrack: step must be > 0");
  if (t1S < t0S) throw InvalidArgumentError("groundTrack: t1S < t0S");
  std::vector<GroundTrackPoint> track;
  track.reserve(static_cast<std::size_t>((t1S - t0S) / stepS) + 1);
  // Monotone dense scan of one satellite: the warm-started sweep converges
  // the Kepler solve in 1-2 iterations per sample instead of a cold solve.
  SatelliteSweep sweep(el);
  for (double t = t0S; t <= t1S + 1e-9; t += stepS) {
    const Vec3 ecef = eciToEcef(sweep.positionEciAt(t), t);
    const Geodetic g = ecefToGeodetic(ecef);
    track.push_back({t, g.latitudeRad, g.longitudeRad, g.altitudeM});
  }
  return track;
}

std::ostream& operator<<(std::ostream& os, const OrbitalElements& el) {
  return os << "OrbitalElements{a=" << el.semiMajorAxisM << "m e=" << el.eccentricity
            << " i=" << el.inclinationRad << " raan=" << el.raanRad
            << " argp=" << el.argPerigeeRad << " M0=" << el.meanAnomalyAtEpochRad
            << '}';
}

}  // namespace openspace
