// Shared 4-lane implementation of the vectorized sweep kernel.
//
// This header is included by exactly two translation units —
// propagation_simd.cpp (ScalarOps lanes, no special flags) and
// propagation_simd_avx2.cpp (Avx2Ops lanes, -mavx2 -mfma) — and must stay
// private to src/orbit. The template uses ONLY operations that are
// correctly rounded (IEEE add/sub/mul/div/fma, round-to-nearest-even) or
// exact (abs, negate, compares, bitwise selects), in a fixed order, so
// any two Ops instantiations produce bit-identical results. Keep it that
// way: no libm calls in the vector path (the rare cold-start fallback
// goes through the scalar spec's solveKeplerReduced per lane, which is
// the same deterministic function under either instantiation).
//
// Trig: sin/cos via Cody-Waite reduction by pi/2 (three 33-bit constant
// pieces, FDLIBM's split, applied with fma) then Cephes minimax
// polynomials on [-pi/4, pi/4] with quadrant unswizzle. Accurate to ~1-2
// ULP of the function value for |x| up to ~1e6 rad.
#pragma once

#include <bit>
#include <cstdint>

#include <openspace/orbit/elements.hpp>
#include <openspace/orbit/propagation_simd.hpp>

namespace openspace::simd {

inline constexpr double kTwoOverPi = 6.36619772367581382433e-01;
inline constexpr double kInvTwoPi = 1.59154943091895335769e-01;
// FDLIBM's 33-bit split of pi/2: pio2_1 + pio2_2 + pio2_3 == pi/2 to
// ~2^-104; each piece has >= 19 trailing zero mantissa bits so n * piece
// is exact for |n| < 2^19 even before fma tightens it.
inline constexpr double kPio2A = 1.57079632673412561417e+00;
inline constexpr double kPio2B = 6.07710050630396597660e-11;
inline constexpr double kPio2C = 2.02226624871116645580e-21;
// 2*pi split: exactly 4x the pi/2 pieces (power-of-two scale).
inline constexpr double kTwoPiA = 4.0 * kPio2A;
inline constexpr double kTwoPiB = 4.0 * kPio2B;
inline constexpr double kTwoPiC = 4.0 * kPio2C;

// Cephes sin/cos minimax coefficients on [-pi/4, pi/4] (Horner order,
// highest degree first; sin(r) = r + r*z*P(z), cos(r) = 1 - z/2 +
// z^2*Q(z) with z = r^2).
inline constexpr double kSinC[6] = {
    1.58962301576546568060e-10, -2.50507477628578072866e-8,
    2.75573136213857245213e-6,  -1.98412698295895385996e-4,
    8.33333333332211858878e-3,  -1.66666666666666307295e-1,
};
inline constexpr double kCosC[6] = {
    -1.13585365213876817300e-11, 2.08757008419747316778e-9,
    -2.75573141792967388112e-7,  2.48015872888517179954e-5,
    -1.38888888888730564116e-3,  4.16666666666665929218e-2,
};

/// sin and cos of every lane. Only correctly-rounded ops, fixed order.
template <class O>
inline void sincosLanes(typename O::V x, typename O::V& sinOut,
                        typename O::V& cosOut) {
  using V = typename O::V;
  const V n = O::roundEven(O::mul(x, O::broadcast(kTwoOverPi)));
  V r = O::fmadd(n, O::broadcast(-kPio2A), x);
  r = O::fmadd(n, O::broadcast(-kPio2B), r);
  r = O::fmadd(n, O::broadcast(-kPio2C), r);
  const V z = O::mul(r, r);

  V ps = O::broadcast(kSinC[0]);
  ps = O::fmadd(ps, z, O::broadcast(kSinC[1]));
  ps = O::fmadd(ps, z, O::broadcast(kSinC[2]));
  ps = O::fmadd(ps, z, O::broadcast(kSinC[3]));
  ps = O::fmadd(ps, z, O::broadcast(kSinC[4]));
  ps = O::fmadd(ps, z, O::broadcast(kSinC[5]));
  const V sinR = O::fmadd(O::mul(ps, z), r, r);

  V pc = O::broadcast(kCosC[0]);
  pc = O::fmadd(pc, z, O::broadcast(kCosC[1]));
  pc = O::fmadd(pc, z, O::broadcast(kCosC[2]));
  pc = O::fmadd(pc, z, O::broadcast(kCosC[3]));
  pc = O::fmadd(pc, z, O::broadcast(kCosC[4]));
  pc = O::fmadd(pc, z, O::broadcast(kCosC[5]));
  const V cosR = O::fmadd(O::mul(z, z), pc,
                          O::fmadd(z, O::broadcast(-0.5), O::broadcast(1.0)));

  // Quadrant unswizzle by n mod 4:
  //   q=0: ( sinR,  cosR)   q=1: ( cosR, -sinR)
  //   q=2: (-sinR, -cosR)   q=3: (-cosR,  sinR)
  V m1, m2, m3;
  O::quadrantMasks(n, m1, m2, m3);
  const V swap = O::orV(m1, m3);
  V sv = O::blend(swap, cosR, sinR);
  V cv = O::blend(swap, sinR, cosR);
  const V signBit = O::broadcast(-0.0);
  sv = O::xorV(sv, O::andV(O::orV(m2, m3), signBit));
  cv = O::xorV(cv, O::andV(O::orV(m1, m2), signBit));
  sinOut = sv;
  cosOut = cv;
}

/// x reduced into ~[-pi, pi] by the nearest multiple of 2*pi. Not IEEE
/// remainder (the multiple is chosen from the rounded quotient), but
/// within ~1 ULP of it; both sweep uses tolerate either branch at the
/// half-way points (the warm guess is only a guess, and the revolution
/// offset is added back before the final trig).
template <class O>
inline typename O::V remainderTwoPi(typename O::V x) {
  using V = typename O::V;
  const V n = O::roundEven(O::mul(x, O::broadcast(kInvTwoPi)));
  V r = O::fmadd(n, O::broadcast(-kTwoPiA), x);
  r = O::fmadd(n, O::broadcast(-kTwoPiB), r);
  r = O::fmadd(n, O::broadcast(-kTwoPiC), r);
  return r;
}

/// Load lanes [i, i+k) of `p`, padding lanes >= k with `fill`.
template <class O>
inline typename O::V loadLanes(const double* p, std::size_t i, std::size_t k,
                               double fill) {
  if (k == 4) return O::load(p + i);
  double tmp[4] = {fill, fill, fill, fill};
  for (std::size_t j = 0; j < k; ++j) tmp[j] = p[i + j];
  return O::load(tmp);
}

/// Rotate perifocal coordinates into ECI (and optionally ECEF) and
/// scatter-store lanes [i, i+k) — the shared tail of every group.
template <class O>
inline void emitPositions(const FleetSoA& f, std::size_t i, std::size_t k,
                          typename O::V xP, typename O::V yP, Vec3* outEci,
                          Vec3* outEcef, double cosEarthRotation,
                          double sinEarthRotation) {
  using V = typename O::V;
  const V p1 = loadLanes<O>(f.p1, i, k, 0.0);
  const V p2 = loadLanes<O>(f.p2, i, k, 0.0);
  const V p3 = loadLanes<O>(f.p3, i, k, 0.0);
  const V q1 = loadLanes<O>(f.q1, i, k, 0.0);
  const V q2 = loadLanes<O>(f.q2, i, k, 0.0);
  const V q3 = loadLanes<O>(f.q3, i, k, 0.0);
  const V x = O::add(O::mul(p1, xP), O::mul(q1, yP));
  const V y = O::add(O::mul(p2, xP), O::mul(q2, yP));
  const V z = O::add(O::mul(p3, xP), O::mul(q3, yP));

  double xTmp[4], yTmp[4], zTmp[4];
  O::store(xTmp, x);
  O::store(yTmp, y);
  O::store(zTmp, z);
  for (std::size_t j = 0; j < k; ++j) {
    outEci[i + j] = {xTmp[j], yTmp[j], zTmp[j]};
  }
  if (outEcef != nullptr) {
    const V c = O::broadcast(cosEarthRotation);
    const V s = O::broadcast(sinEarthRotation);
    const V ex = O::sub(O::mul(c, x), O::mul(s, y));
    const V ey = O::add(O::mul(s, x), O::mul(c, y));
    double exTmp[4], eyTmp[4];
    O::store(exTmp, ex);
    O::store(eyTmp, ey);
    for (std::size_t j = 0; j < k; ++j) {
      outEcef[i + j] = {exTmp[j], eyTmp[j], zTmp[j]};
    }
  }
}

/// One group of 4 satellite lanes starting at index i (k <= 4 valid).
template <class O>
inline void sweepGroup(const FleetSoA& f, std::size_t i, std::size_t k,
                       double tSeconds, bool primed, double* prevMeanRad,
                       double* prevEccentricRad, Vec3* outEci, Vec3* outEcef,
                       double cosEarthRotation, double sinEarthRotation) {
  using V = typename O::V;
  const V zero = O::broadcast(0.0);
  const V one = O::broadcast(1.0);
  const V t = O::broadcast(tSeconds);

  // Padding lanes are harmless circular orbits frozen at the origin of
  // phase: e = 0 short-circuits their whole solve path.
  const V a = loadLanes<O>(f.semiMajorAxisM, i, k, 1.0);
  const V ecc = loadLanes<O>(f.eccentricity, i, k, 0.0);
  const V nMot = loadLanes<O>(f.meanMotionRadPerS, i, k, 0.0);
  const V m0 = loadLanes<O>(f.meanAnomalyAtEpochRad, i, k, 0.0);
  const V b = loadLanes<O>(f.semiMinorAxisM, i, k, 1.0);

  // Mean anomaly advance — mul then add, mirroring the scalar spec
  // (m = m0 + n*t), not fused.
  const V mFull = O::add(m0, O::mul(nMot, t));
  const V eccZero = O::cmpEq(ecc, zero);

  // All-circular groups (the Walker common case) skip the solver
  // entirely: e == 0 lanes take E = m verbatim and leave the warm state
  // untouched, exactly as the mixed path blends below — same bits,
  // fewer operations.
  if (O::movemask(eccZero) == 0xF) {
    V cosE0, sinE0;
    sincosLanes<O>(mFull, sinE0, cosE0);
    const V xP0 = O::mul(a, cosE0);
    const V yP0 = O::mul(b, sinE0);
    emitPositions<O>(f, i, k, xP0, yP0, outEci, outEcef, cosEarthRotation,
                     sinEarthRotation);
    return;
  }

  const V reduced = remainderTwoPi<O>(mFull);
  V guess = zero;
  // done: lanes that need no (further) Newton work. e == 0 lanes never
  // enter the solver (their anomaly is blended to mFull below).
  V done = eccZero;
  if (primed) {
    // Warm start: previous eccentric anomaly advanced by the mean delta
    // (guess = prevE + rem2pi(reduced - prevM), mirroring the spec).
    const V prevM = loadLanes<O>(prevMeanRad, i, k, 0.0);
    const V prevE = loadLanes<O>(prevEccentricRad, i, k, 0.0);
    guess = O::add(prevE, remainderTwoPi<O>(O::sub(reduced, prevM)));
    const V tol = O::broadcast(1e-14);
    for (int it = 0; it < 20 && O::movemask(done) != 0xF; ++it) {
      V sg, cg;
      sincosLanes<O>(guess, sg, cg);
      // f(E) = E - e sin E - m ; f'(E) = 1 - e cos E — op order as the
      // scalar newtonKepler (no fma: only the trig source differs).
      const V fv = O::sub(O::sub(guess, O::mul(ecc, sg)), reduced);
      const V fp = O::sub(one, O::mul(ecc, cg));
      const V step = O::div(fv, fp);
      guess = O::blend(done, guess, O::sub(guess, step));
      done = O::orV(done, O::cmpLt(O::abs(step), tol));
    }
  }
  // Unprimed lanes and warm starts that missed the tolerance fall back to
  // the scalar spec's bisection-safeguarded cold solve, per lane. Both
  // instantiations reach here with identical lane values, so the calls
  // (and results) are identical.
  if (O::movemask(done) != 0xF) {
    double gTmp[4], rTmp[4], eTmp[4];
    O::store(gTmp, guess);
    O::store(rTmp, reduced);
    O::store(eTmp, ecc);
    const int mask = O::movemask(done);
    for (std::size_t j = 0; j < 4; ++j) {
      if ((mask & (1 << j)) == 0 && eTmp[j] != 0.0) {
        gTmp[j] = solveKeplerReduced(rTmp[j], eTmp[j]);
      }
    }
    guess = O::load(gTmp);
  }

  // Full eccentric anomaly: revolution offset restored as in the spec
  // (guess + (m - reduced)); e == 0 lanes take the mean anomaly directly.
  V eAnom = O::add(guess, O::sub(mFull, reduced));
  eAnom = O::blend(eccZero, mFull, eAnom);

  V cosE, sinE;
  sincosLanes<O>(eAnom, sinE, cosE);
  // Perifocal coordinates and rotation — op order as the spec.
  const V xP = O::mul(a, O::sub(cosE, ecc));
  const V yP = O::mul(b, sinE);
  emitPositions<O>(f, i, k, xP, yP, outEci, outEcef, cosEarthRotation,
                   sinEarthRotation);

  // Warm state update — skipped for e == 0 satellites, as in the spec.
  double rTmp[4], gTmp[4];
  O::store(rTmp, reduced);
  O::store(gTmp, guess);
  for (std::size_t j = 0; j < k; ++j) {
    if (f.eccentricity[i + j] != 0.0) {
      prevMeanRad[i + j] = rTmp[j];
      prevEccentricRad[i + j] = gTmp[j];
    }
  }
}

template <class O>
inline void sweepRangeLanes(const FleetSoA& f, double tSeconds, bool primed,
                            double* prevMeanRad, double* prevEccentricRad,
                            Vec3* outEci, Vec3* outEcef,
                            double cosEarthRotation, double sinEarthRotation,
                            std::size_t begin, std::size_t end) {
  std::size_t i = begin;
  for (; i + 4 <= end; i += 4) {
    sweepGroup<O>(f, i, 4, tSeconds, primed, prevMeanRad, prevEccentricRad,
                  outEci, outEcef, cosEarthRotation, sinEarthRotation);
  }
  if (i < end) {
    sweepGroup<O>(f, i, end - i, tSeconds, primed, prevMeanRad,
                  prevEccentricRad, outEci, outEcef, cosEarthRotation,
                  sinEarthRotation);
  }
}

}  // namespace openspace::simd
