#include <openspace/orbit/shells.hpp>

#include <algorithm>

#include <openspace/geo/error.hpp>
#include <openspace/orbit/snapshot.hpp>

namespace openspace {

namespace {

std::vector<OrbitalElements> makeShell(const ShellSpec& spec) {
  switch (spec.kind) {
    case ShellKind::Star:
      return makeWalkerStar(spec.walker);
    case ShellKind::Delta:
      return makeWalkerDelta(spec.walker);
  }
  throw InvalidArgumentError("MultiShellFleet: unknown shell kind");
}

}  // namespace

MultiShellFleet::MultiShellFleet(MultiShellConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.shells.empty()) {
    throw InvalidArgumentError("MultiShellFleet: at least one shell required");
  }
  if (cfg_.maxIslRangeM <= 0.0 || cfg_.crossShellMaxRangeM <= 0.0) {
    throw InvalidArgumentError("MultiShellFleet: ISL ranges must be > 0");
  }
  if (cfg_.crossShell == CrossShellLinkPolicy::NearestVisible &&
      cfg_.crossShellK < 1) {
    throw InvalidArgumentError(
        "MultiShellFleet: crossShellK must be >= 1 under NearestVisible");
  }
  shellBegin_.reserve(cfg_.shells.size() + 1);
  shellBegin_.push_back(0);
  grids_.reserve(cfg_.shells.size());
  for (const ShellSpec& spec : cfg_.shells) {
    std::vector<OrbitalElements> shell = makeShell(spec);  // validates cfg
    grids_.emplace_back(shell.size(), spec.walker.planes);
    elements_.insert(elements_.end(), shell.begin(), shell.end());
    shellBegin_.push_back(elements_.size());
  }
  hash_ = constellationHash(elements_);
}

const ShellSpec& MultiShellFleet::spec(std::size_t shell) const {
  if (shell >= shellCount()) {
    throw InvalidArgumentError("MultiShellFleet::spec: shell out of range");
  }
  return cfg_.shells[shell];
}

std::size_t MultiShellFleet::shellBegin(std::size_t shell) const {
  if (shell >= shellBegin_.size()) {
    throw InvalidArgumentError("MultiShellFleet::shellBegin: shell out of range");
  }
  return shellBegin_[shell];
}

std::pair<std::size_t, std::size_t> MultiShellFleet::shellRange(
    std::size_t shell) const {
  if (shell >= shellCount()) {
    throw InvalidArgumentError("MultiShellFleet::shellRange: shell out of range");
  }
  return {shellBegin_[shell], shellBegin_[shell + 1]};
}

std::size_t MultiShellFleet::shellOf(std::size_t satIndex) const {
  if (satIndex >= size()) {
    throw InvalidArgumentError("MultiShellFleet::shellOf: index out of range");
  }
  // shellBegin_ is sorted ascending; the owning shell is the last begin
  // that is <= satIndex.
  const auto it = std::upper_bound(shellBegin_.begin(), shellBegin_.end(),
                                   satIndex);
  return static_cast<std::size_t>(it - shellBegin_.begin()) - 1;
}

const PlaneGrid& MultiShellFleet::grid(std::size_t shell) const {
  if (shell >= grids_.size()) {
    throw InvalidArgumentError("MultiShellFleet::grid: shell out of range");
  }
  return grids_[shell];
}

std::vector<ShellLink> MultiShellFleet::islLinks(
    const ConstellationSnapshot& snapshot) const {
  if (snapshot.elementsHash() != hash_ || snapshot.size() != size()) {
    throw InvalidArgumentError(
        "MultiShellFleet::islLinks: snapshot is of a different fleet");
  }
  const std::vector<Vec3>& eci = snapshot.eci();
  std::vector<ShellLink> links;

  // The same edge predicate TopologyBuilder::PlusGrid applies: within
  // range, sightline clears the Earth by the configured margin. Self
  // pairs (single-satellite planes wrap onto themselves) are skipped.
  const auto tryAdd = [&](std::size_t i, std::size_t j, double rangeCapM,
                          bool cross) {
    if (i == j) return;
    const double dist = eci[i].distanceTo(eci[j]);
    if (dist > rangeCapM) return;
    if (!lineOfSightClear(eci[i], eci[j], cfg_.losClearanceM)) return;
    links.push_back({std::min(i, j), std::max(i, j), dist, cross});
  };

  // --- Per-shell +grid wiring (TopologyBuilder::PlusGrid attempt order) --
  for (std::size_t s = 0; s < shellCount(); ++s) {
    const PlaneGrid& grid = grids_[s];
    const std::size_t base = shellBegin_[s];
    const std::size_t count = shellBegin_[s + 1] - base;
    const bool seam = cfg_.shells[s].interPlaneSeam;
    for (std::size_t local = 0; local < count; ++local) {
      const PlaneId plane = grid.planeOf(local);
      const std::size_t slot = grid.slotOf(local);
      // Intra-plane ring neighbor.
      tryAdd(base + local, base + grid.indexOf(plane, slot + 1),
             cfg_.maxIslRangeM, false);
      // Same-slot neighbor in the next plane (seam optional).
      if (!grid.isSeamPlane(plane) || seam) {
        tryAdd(base + local, base + grid.indexOf(grid.nextPlane(plane), slot),
               cfg_.maxIslRangeM, false);
      }
    }
  }

  // --- Cross-shell links -------------------------------------------------
  if (cfg_.crossShell == CrossShellLinkPolicy::NearestVisible &&
      shellCount() > 1) {
    // The snapshot's spatially pruned adjacency already applies the range
    // and line-of-sight predicate and lists neighbors index-ascending;
    // filter each satellite's row to other shells and keep the k closest
    // (ties broken by the row's ascending-index order).
    const auto topo =
        snapshot.islTopology(cfg_.crossShellMaxRangeM, cfg_.losClearanceM);
    const std::size_t k = static_cast<std::size_t>(cfg_.crossShellK);
    std::vector<std::pair<double, std::size_t>> candidates;
    for (std::size_t i = 0; i < size(); ++i) {
      const std::size_t shell = shellOf(i);
      candidates.clear();
      for (const auto& [j, dist] : topo->adjacency[i]) {
        if (j >= shellBegin_[shell] && j < shellBegin_[shell + 1]) continue;
        candidates.emplace_back(dist, j);
      }
      if (candidates.size() > k) {
        std::partial_sort(candidates.begin(), candidates.begin() +
                          static_cast<std::ptrdiff_t>(k), candidates.end());
        candidates.resize(k);
      } else {
        std::sort(candidates.begin(), candidates.end());
      }
      for (const auto& [dist, j] : candidates) {
        links.push_back({std::min(i, j), std::max(i, j), dist, true});
      }
    }
  }

  // Deterministic output: unique undirected edges ascending by (a, b).
  // A +grid edge can also be selected by the cross-shell pass only between
  // different shells, which +grid never wires, so intra/cross duplicates
  // cannot collide; duplicates within a class (ring wrap in 2-slot planes,
  // both endpoints electing each other) keep their first emission.
  std::sort(links.begin(), links.end(),
            [](const ShellLink& x, const ShellLink& y) {
              if (x.a != y.a) return x.a < y.a;
              if (x.b != y.b) return x.b < y.b;
              return x.crossShell < y.crossShell;
            });
  links.erase(std::unique(links.begin(), links.end(),
                          [](const ShellLink& x, const ShellLink& y) {
                            return x.a == y.a && x.b == y.b;
                          }),
              links.end());
  return links;
}

std::vector<ShellLink> MultiShellFleet::islLinks(double tSeconds) const {
  return islLinks(*SnapshotCache::global().at(elements_, tSeconds));
}

}  // namespace openspace
