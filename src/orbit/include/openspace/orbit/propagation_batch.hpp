// Batch (structure-of-arrays) two-body propagation.
//
// Every experiment in the reproduction — the Figure-2 latency/coverage
// sweeps, handover prediction, the temporal router's per-interval
// snapshots — bottoms out in per-satellite Kepler propagation. The scalar
// path (orbit/elements.hpp `propagate`) recomputes every time-invariant
// term on every call: the mean motion (a `pow` and a `sqrt`), two
// `sqrt(1-e^2)` factors, and the six trig evaluations of the perifocal->ECI
// rotation. FleetEphemeris compiles a fleet once, hoisting all of that into
// contiguous per-satellite arrays, so evaluating a timestep reduces to flat
// loops the compiler can keep in registers and auto-vectorize: a
// mean-anomaly advance, a Kepler solve, one sin/cos pair, and two
// multiply-adds per axis.
//
// The scalar `propagate`/`positionEci` stays as the executable spec
// (mirroring the `openspace::legacy` routing pattern): FleetEphemeris'
// cold-start evaluation performs the exact same floating-point operations
// in the same order, so its output is bit-for-bit identical — pinned by
// the property tests in tests/test_propagation_batch.cpp.
//
// TimeSweep layers warm-started sweeps on top: it carries each satellite's
// previous eccentric anomaly across steps as the Newton starting guess, so
// near-circular LEO fleets converge in 1-2 iterations instead of a cold
// solve per step. Per-satellite state plus the fixed parallelFor chunk
// decomposition keep sweep results bit-identical at any thread count.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include <openspace/geo/vec3.hpp>
#include <openspace/orbit/elements.hpp>

namespace openspace {

class EphemerisService;

/// A fleet's orbital elements compiled once into structure-of-arrays form
/// with every time-invariant term of the two-body propagation precomputed.
/// Immutable after construction, so one compiled fleet may be shared across
/// threads and timesteps freely.
class FleetEphemeris {
 public:
  /// Compile `elements` (index i keeps its position). Throws
  /// InvalidArgumentError if any eccentricity is outside [0, 1) — the same
  /// domain the scalar solveKepler enforces per call.
  explicit FleetEphemeris(const std::vector<OrbitalElements>& elements);

  /// Compile every satellite registered in `ephemeris`, in publication
  /// order (index i == ephemeris.satellites()[i]).
  explicit FleetEphemeris(const EphemerisService& ephemeris);

  std::size_t size() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }

  /// Approximate resident size in bytes (the eleven per-satellite SoA
  /// arrays) — what the compiled() cache charges per entry.
  std::size_t approxBytes() const noexcept {
    return sizeof(*this) + count_ * 11 * sizeof(double);
  }

  /// Cold-start batch evaluation: ECI position of every satellite at time
  /// t, written to `outEci` (resized to size()). Parallel over satellites;
  /// bit-for-bit identical to calling the scalar positionEci per satellite,
  /// at any thread count.
  void positionsAt(double tSeconds, std::vector<Vec3>& outEci) const;

  /// As above, plus the same positions rotated into ECEF. The Earth
  /// rotation angle's sin/cos is computed once for the whole fleet instead
  /// of once per satellite; the per-satellite arithmetic matches
  /// eciToEcef() exactly.
  void positionsAt(double tSeconds, std::vector<Vec3>& outEci,
                   std::vector<Vec3>& outEcef) const;

  /// Single-satellite cold evaluation (same operations as the batch path).
  Vec3 positionAt(std::size_t i, double tSeconds) const;

  /// The compiled form of `elements`, from a small process-wide LRU cache
  /// keyed by (constellationHash, count): consumers that repeatedly
  /// snapshot the same fleet — the temporal router's interval grid, the
  /// coverage estimators, handover planning — compile it once. `hash` must
  /// be constellationHash(elements) (the caller usually has it already).
  static std::shared_ptr<const FleetEphemeris> compiled(
      const std::vector<OrbitalElements>& elements, std::uint64_t hash);

  /// Byte budget of the compiled() cache. Eviction drops LRU-tail entries
  /// while either the entry count exceeds the fixed capacity or the summed
  /// approxBytes() exceed this budget (the newest entry is exempt), so for
  /// equal-size fleets the eviction order is plain LRU either way. Returns
  /// the previous budget; pass 0 to shrink the cache to a single entry.
  /// Intended for tests and mega-constellation sweeps that want a tighter
  /// or looser memory cap than the 256 MiB default.
  static std::size_t setCompiledCacheByteBudget(std::size_t bytes);
  /// Summed approxBytes() of the currently cached compiled fleets.
  static std::size_t compiledCacheApproxBytes();

 private:
  friend class TimeSweep;

  /// Perifocal position from a solved eccentric anomaly, rotated to ECI —
  /// the shared tail of every evaluation path (operation-for-operation the
  /// scalar spec's perifocal block).
  Vec3 positionFromEccentricAnomaly(std::size_t i,
                                    double eccentricAnomalyRad) const;

  std::size_t count_ = 0;
  // Per-satellite time-invariant terms, one contiguous array per field.
  std::vector<double> semiMajorAxisM_;
  std::vector<double> eccentricity_;
  std::vector<double> meanMotionRadPerS_;
  std::vector<double> meanAnomalyAtEpochRad_;
  std::vector<double> semiMinorAxisM_;  ///< a*sqrt(1-e^2): the y_P coefficient.
  // Perifocal->ECI rotation, stored as its two used columns
  // P = (r11, r21, r31) and Q = (r12, r22, r32).
  std::vector<double> p1_, p2_, p3_;  // dimensionless rotation-matrix entries
  std::vector<double> q1_, q2_, q3_;  // dimensionless rotation-matrix entries
};

/// Warm-started time sweep over a compiled fleet.
///
/// Each advance() reuses the previous step's reduced (mean, eccentric)
/// anomaly pair per satellite as the Newton starting guess. Invariants:
///  * the visit history influences results only through the warm guesses —
///    every solve still iterates to the same |step| < 1e-14 convergence
///    criterion as the cold solver, so warm and cold positions agree to
///    within 1e-13 relative to the orbital radius per component
///    (property-tested; exactly equal for e == 0 fleets, where both
///    solvers short-circuit);
///  * a warm solve that fails to converge within the iteration cap falls
///    back to the scalar spec's bisection-safeguarded cold solve, so a
///    sweep can jump arbitrarily far in time (or even backwards) without
///    losing accuracy;
///  * per-satellite state and the fixed chunk decomposition of parallelFor
///    make sweeps bit-identical at any thread count (hard-gated in
///    bench/bench_propagation.cpp and the TSan CI lane).
class TimeSweep {
 public:
  /// Which per-chunk kernel advance() runs. ScalarSpec is the executable
  /// spec (bit-for-bit the scalar propagate path, the default); Simd
  /// dispatches the vectorized kernel (orbit/propagation_simd.hpp — AVX2
  /// when available, 4-lane scalar fallback otherwise), which agrees with
  /// the spec within a few ULP of the orbital radius for e == 0 and
  /// within 1e-13 * semi-major axis per component otherwise
  /// (property-tested in tests/test_simd.cpp). Either kernel is
  /// bit-identical at any thread count.
  enum class Kernel { ScalarSpec, Simd };

  /// The sweep holds a reference; `fleet` must outlive it.
  explicit TimeSweep(const FleetEphemeris& fleet);
  /// Shared-ownership variant for sweeps that outlive the caller's frame.
  explicit TimeSweep(std::shared_ptr<const FleetEphemeris> fleet);

  const FleetEphemeris& fleet() const noexcept { return *fleet_; }

  /// Select the advance() kernel. Safe between advances; the warm state
  /// carries over (both kernels maintain the same reduced-anomaly state).
  void setKernel(Kernel kernel) noexcept { kernel_ = kernel; }
  Kernel kernel() const noexcept { return kernel_; }

  /// ECI positions of the whole fleet at time t (warm-started solve).
  void advance(double tSeconds, std::vector<Vec3>& outEci);

  /// As above, plus ECEF positions (Earth angle hoisted per step).
  void advance(double tSeconds, std::vector<Vec3>& outEci,
               std::vector<Vec3>& outEcef);

 private:
  void advanceImpl(double tSeconds, std::vector<Vec3>& outEci,
                   std::vector<Vec3>* outEcef);

  std::shared_ptr<const FleetEphemeris> owned_;  ///< May be null (ref ctor).
  const FleetEphemeris* fleet_;
  std::vector<double> prevMeanRad_;       ///< Reduced mean anomaly, last step.
  std::vector<double> prevEccentricRad_;  ///< Reduced eccentric anomaly.
  bool primed_ = false;
  Kernel kernel_ = Kernel::ScalarSpec;
};

/// Warm single-satellite propagator for dense time scans (handover
/// visibility-window searches, ground tracks): the scalar analogue of
/// TimeSweep. Cheap to construct (compiles one satellite's invariants) and
/// carries the last solve as the next warm start.
class SatelliteSweep {
 public:
  /// An empty sweep; reset() must run before positionEciAt.
  SatelliteSweep() = default;

  /// Throws InvalidArgumentError if eccentricity is outside [0, 1).
  explicit SatelliteSweep(const OrbitalElements& elements);

  /// Re-seed the sweep with a new orbit, dropping the warm-start state —
  /// after reset() the object is indistinguishable from a freshly
  /// constructed SatelliteSweep(elements), so every positionEciAt sequence
  /// is bit-for-bit the fresh object's (pinned in
  /// tests/test_propagation_batch.cpp). Lets candidate loops (the handover
  /// planner, the session sweep) reuse one sweep object across satellites
  /// instead of constructing per candidate. Throws InvalidArgumentError if
  /// eccentricity is outside [0, 1).
  void reset(const OrbitalElements& elements);

  /// ECI position at t; successive calls warm-start from each other.
  Vec3 positionEciAt(double tSeconds);

 private:
  double semiMajorAxisM_ = 0.0;
  double eccentricity_ = 0.0;
  double meanMotionRadPerS_ = 0.0;
  double meanAnomalyAtEpochRad_ = 0.0;
  double semiMinorAxisM_ = 0.0;
  double p1_ = 0.0, p2_ = 0.0, p3_ = 0.0;  // units: rotation-matrix entries
  double q1_ = 0.0, q2_ = 0.0, q3_ = 0.0;  // units: rotation-matrix entries
  double prevMeanRad_ = 0.0;
  double prevEccentricRad_ = 0.0;
  bool primed_ = false;
};

}  // namespace openspace
