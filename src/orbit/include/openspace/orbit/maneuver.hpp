// Orbital maneuver planning.
//
// §3 counts "launching and maneuvering satellites into the desired orbit"
// among the dominant startup costs. This module quantifies the maneuvering
// part: impulsive two-body transfers (Hohmann altitude raises, plane
// changes, in-plane phasing into a constellation slot) and the propellant
// they cost via the rocket equation — feeding the capex model with a
// physics-backed line item instead of a guess.
#pragma once

#include <openspace/orbit/elements.hpp>

namespace openspace {

/// Circular-orbit speed at radius r (vis-viva, e = 0).
double circularVelocityMps(double radiusM);

/// Total delta-v (m/s) of a Hohmann transfer between two circular coplanar
/// orbits of radii r1, r2 (either direction). Throws InvalidArgumentError
/// for non-positive radii.
double hohmannDeltaVMps(double r1M, double r2M);

/// Transfer time of the Hohmann ellipse (half its period), seconds.
double hohmannTransferTimeS(double r1M, double r2M);

/// Delta-v of a pure plane change of `angleRad` at circular radius r:
/// 2 v sin(angle/2). Plane changes are notoriously expensive — this is why
/// OpenSpace providers launch into their target planes rather than
/// re-planing on orbit.
double planeChangeDeltaVMps(double radiusM, double angleRad);

/// In-plane phasing: drift `phaseChangeRad` along the orbit (positive =
/// move ahead) by temporarily lowering/raising to a phasing orbit for
/// `revolutions` laps. Returns the delta-v cost and the time it takes.
struct PhasingPlan {
  double deltaVMps = 0.0;
  double durationS = 0.0;
  double phasingSemiMajorAxisM = 0.0;
};

/// Throws InvalidArgumentError for revolutions < 1, |phase| >= 2*pi, or a
/// phasing orbit that would dip below ~160 km altitude (re-entry).
PhasingPlan planPhasing(const OrbitalElements& orbit, double phaseChangeRad,
                        int revolutions);

/// Propellant mass (kg) to achieve `deltaVMps` from `dryMassKg` with an
/// engine of `ispSeconds` specific impulse (Tsiolkovsky). Throws
/// InvalidArgumentError on non-positive inputs.
double propellantMassKg(double dryMassKg, double deltaVMps, double ispSeconds);

/// Full slot-acquisition budget: from a rideshare drop-off orbit (circular
/// at `injectionAltM`, same plane as target by assumption of a dedicated
/// launch window) to the target circular slot: altitude raise + phasing.
struct SlotAcquisition {
  double totalDeltaVMps = 0.0;
  double totalDurationS = 0.0;
  double propellantKg = 0.0;  ///< For the given dry mass / Isp.
};

SlotAcquisition planSlotAcquisition(double injectionAltM,
                                    const OrbitalElements& targetSlot,
                                    double targetPhaseErrorRad,
                                    double dryMassKg,
                                    double ispSeconds = 220.0);

}  // namespace openspace
