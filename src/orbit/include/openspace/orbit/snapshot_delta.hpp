// Link-diff between consecutive constellation snapshots.
//
// A temporal sweep re-derives the ISL graph at every step, yet orbital
// motion changes only a sliver of links per step: at 1 s resolution a
// 66-satellite fleet sees a handful of ISL openings/closings per minute,
// while every persisting link merely drifts in range. diffIslTopology()
// makes that sparsity explicit: it compares the spatially pruned ISL
// adjacencies of two snapshots (each built by the existing grid — O(cells
// scanned), never O(N^2) pair enumeration) and emits exactly which links
// appeared, disappeared, or changed range. The topology layer
// (topology/delta.hpp) consumes these lists to patch compiled graphs
// instead of recompiling them.
//
// Soundness: both adjacencies list neighbors in ascending index order (a
// documented IslTopology invariant, identical on both sides of the
// kIslAllPairsMaxSats crossover), so a per-satellite sorted merge sees
// every pair that exists in either snapshot exactly once. A link can never
// escape the diff: it is in prev's list, next's list, or neither.
#pragma once

#include <cstddef>
#include <vector>

#include <openspace/geo/units.hpp>

namespace openspace {

class ConstellationSnapshot;

/// One ISL (satellite index pair, i < j) that differs between snapshots.
struct IslLinkChange {
  std::size_t i = 0;
  std::size_t j = 0;
  /// Range at the *next* snapshot for added/rangeChanged entries; range at
  /// the *previous* snapshot for removed entries (the link has no next
  /// range).
  double distanceM = 0.0;
};

/// The link-level difference between two snapshots of one constellation.
struct SnapshotDelta {
  double maxRangeM = 0.0;
  double losClearanceM = 0.0;
  /// Pairs linked in `next` but not in `prev`, ascending (i, j).
  std::vector<IslLinkChange> added;
  /// Pairs linked in `prev` but not in `next`, ascending (i, j).
  std::vector<IslLinkChange> removed;
  /// Pairs linked in both whose range changed (bitwise double compare —
  /// at any real step this is nearly every persisting link).
  std::vector<IslLinkChange> rangeChanged;
  /// Links persisting with bitwise-identical range (repeated timestamps).
  std::size_t unchanged = 0;

  /// True when the link *set* changed (a patched CSR needs a structural
  /// rebuild, not just cost overwrites).
  bool structural() const noexcept { return !added.empty() || !removed.empty(); }
  bool empty() const noexcept {
    return added.empty() && removed.empty() && rangeChanged.empty();
  }
};

/// Diff the ISL topologies of two snapshots of the same fleet under the
/// given link predicate (range + line-of-sight clearance, matching
/// ConstellationSnapshot::islTopology). Adjacency construction is shared
/// with — and cached on — the snapshots themselves. Throws
/// InvalidArgumentError if the snapshots differ in satellite count.
SnapshotDelta diffIslTopology(const ConstellationSnapshot& prev,
                              const ConstellationSnapshot& next,
                              double maxRangeM, double losClearanceM = km(80.0));

}  // namespace openspace
