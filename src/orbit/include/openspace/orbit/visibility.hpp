// Satellite-to-ground visibility and contact-window prediction.
#pragma once

#include <vector>

#include <openspace/geo/geodetic.hpp>
#include <openspace/orbit/elements.hpp>

namespace openspace {

/// Earth central half-angle of the coverage footprint of a satellite at
/// `altitudeM`, for ground terminals requiring at least `minElevationRad`
/// elevation: lambda = acos(Re/(Re+h) * cos(e)) - e (spherical Earth).
/// Throws InvalidArgumentError for altitude <= 0 or elevation outside
/// [0, pi/2].
double footprintHalfAngleRad(double altitudeM, double minElevationRad);

/// Slant range (meters) from a ground terminal at `minElevationRad` to a
/// satellite at `altitudeM` — the maximum usable link distance.
double maxSlantRangeM(double altitudeM, double minElevationRad);

/// True if the satellite at ECI position `satEci` (time `tSeconds`) is above
/// `minElevationRad` as seen from geodetic ground point `ground`.
bool isVisible(const Vec3& satEci, const Geodetic& ground, double tSeconds,
               double minElevationRad);

/// Elevation (radians) of the satellite as seen from the ground point at
/// time t; negative when below the horizon.
double elevationFrom(const Vec3& satEci, const Geodetic& ground, double tSeconds);

/// A time interval during which a satellite is visible from a ground point.
struct ContactWindow {
  double startS = 0.0;
  double endS = 0.0;
  double durationS() const { return endS - startS; }
};

/// Predict all visibility windows of `el` from `ground` over [t0S, t1S].
/// Coarse-samples at `stepS` then refines each edge by bisection to ~1 ms.
/// Windows truncated by the interval boundaries are reported truncated.
std::vector<ContactWindow> contactWindows(const OrbitalElements& el,
                                          const Geodetic& ground, double t0S,
                                          double t1S, double minElevationRad,
                                          double stepS = 10.0);

}  // namespace openspace
