// The constellation-snapshot engine.
//
// The paper's routing design assumes every participant can cheaply compute
// the "full public view of the topology" from public ephemerides, and the
// §4 Figure-2 study re-evaluates the whole fleet's geometry at every sweep
// step. ConstellationSnapshot is the one place in the library where an
// entire constellation is propagated to a time t: it propagates every
// satellite once (in parallel via openspace::parallelFor), precomputes
// ECI and ECEF positions, answers elevation-visibility queries, and lazily
// builds a spatially pruned ISL adjacency that path queries share. Every
// layer that needs "all satellites at time t" — the Figure-2 engine, the
// topology builder, the coverage estimators, ISL discovery, the coalition
// oracle — consumes this type instead of propagating by hand.
//
// SnapshotCache is the companion LRU cache keyed by (constellation hash,
// quantized t): sweeps that revisit a timestep (e.g. the worst-case and
// Monte-Carlo coverage estimators scoring the same constellation) share
// one propagation instead of repeating it.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include <openspace/core/thread_annotations.hpp>
#include <openspace/geo/geodetic.hpp>
#include <openspace/geo/units.hpp>
#include <openspace/orbit/elements.hpp>

namespace openspace {

class EphemerisService;

/// Fleet size at or below which islTopology() uses the all-pairs O(N^2)
/// scan instead of sorted-bucket spatial pruning. Below a few hundred
/// satellites the scan beats the grid's bucket-allocation and hash-probe
/// overhead. This is a performance crossover only, never a semantic switch:
/// both paths evaluate the same edge predicate and emit neighbors in the
/// same (index-ascending) order, so the adjacency is identical on either
/// side of the threshold (pinned by tests at 255/256/257 satellites).
inline constexpr std::size_t kIslAllPairsMaxSats = 256;

/// ISL adjacency of a snapshot: for each satellite, its (neighbor index,
/// distance) pairs sorted by neighbor index. An edge exists when the pair
/// is within `maxRangeM` and the sightline clears the Earth by
/// `losClearanceM`.
struct IslTopology {
  double maxRangeM = 0.0;
  double losClearanceM = 0.0;
  std::vector<std::vector<std::pair<std::size_t, double>>> adjacency;
  std::size_t linkCount = 0;
};

/// Order-dependent 64-bit hash of a constellation's orbital elements
/// (FNV-1a over the raw element doubles, in order — two element lists hash
/// equal iff they are bitwise identical in the same order).
std::uint64_t constellationHash(const std::vector<OrbitalElements>& elements);

/// All satellites of one constellation propagated to a single instant.
class ConstellationSnapshot {
 public:
  /// Propagate `elements` to time t (parallel over satellites).
  ConstellationSnapshot(std::vector<OrbitalElements> elements, double tSeconds);

  /// Propagate every satellite registered in `ephemeris`, in publication
  /// order (index i == ephemeris.satellites()[i]).
  ConstellationSnapshot(const EphemerisService& ephemeris, double tSeconds);

  double timeSeconds() const noexcept { return tS_; }
  std::size_t size() const noexcept { return elements_.size(); }
  bool empty() const noexcept { return elements_.empty(); }
  std::uint64_t elementsHash() const noexcept { return hash_; }

  /// Approximate resident size in bytes: the element list plus both
  /// position arrays. The lazily built ISL adjacency is deliberately
  /// excluded — SnapshotCache charges entries at insert time, before any
  /// topology exists, and an approximate budget does not chase later
  /// growth.
  std::size_t approxBytes() const noexcept {
    return sizeof(*this) +
           elements_.size() * (sizeof(OrbitalElements) + 2 * sizeof(Vec3));
  }

  const std::vector<OrbitalElements>& elements() const noexcept {
    return elements_;
  }
  /// ECI positions at timeSeconds(), one per satellite.
  const std::vector<Vec3>& eci() const noexcept { return eci_; }
  /// The same positions rotated into ECEF.
  const std::vector<Vec3>& ecef() const noexcept { return ecef_; }
  const Vec3& eci(std::size_t i) const { return eci_.at(i); }
  const Vec3& ecef(std::size_t i) const { return ecef_.at(i); }
  /// Altitude above the mean-radius Earth, meters.
  double altitudeM(std::size_t i) const;

  /// Closest satellite above `minElevationRad` as seen from a ground site
  /// (site ECEF computed once); nullopt if none is visible.
  std::optional<std::size_t> closestVisible(const Geodetic& site,
                                            double minElevationRad) const;
  std::optional<std::size_t> closestVisible(const Vec3& siteEcef,
                                            double minElevationRad) const;

  /// ISL adjacency under (maxRangeM, losClearanceM). Built lazily on first
  /// use with sorted-bucket spatial pruning (flat CSR buckets over grid
  /// cells of side >= maxRangeM — the side is clamped up when the packed
  /// cell keys would otherwise overflow, so the pruning path covers every
  /// finite geometry at every fleet size: only the 27 neighboring cells
  /// are scanned per satellite, never all pairs), then cached on the
  /// snapshot; subsequent calls with the same parameters are free.
  /// Thread-safe.
  std::shared_ptr<const IslTopology> islTopology(
      double maxRangeM, double losClearanceM = km(80.0)) const;

  /// Dijkstra over the cached ISL adjacency, edge weight = distance.
  /// Returns (path length, hops) or nullopt if disconnected. The adjacency
  /// is built once per snapshot, not once per (src, dst) query.
  std::optional<std::pair<double, int>> shortestIslPath(
      std::size_t src, std::size_t dst, double maxRangeM,
      double losClearanceM = km(80.0)) const;

 private:
  void propagateAll();

  std::vector<OrbitalElements> elements_;
  double tS_ = 0.0;
  std::uint64_t hash_ = 0;
  std::vector<Vec3> eci_;
  std::vector<Vec3> ecef_;
  mutable Mutex islMutex_;
  mutable std::shared_ptr<const IslTopology> isl_ OPENSPACE_GUARDED_BY(islMutex_);
};

/// Precomputed spherical-cap footprint test for surface points: satellite i
/// covers a surface point p (|p| == mean Earth radius) iff the central
/// angle between p and the sub-satellite direction is at most the
/// footprint half-angle at the query elevation mask. Reduces the per-
/// (sample, satellite) visibility test to one dot-product comparison.
class FootprintIndex {
 public:
  FootprintIndex(const ConstellationSnapshot& snapshot, double minElevationRad);

  std::size_t size() const noexcept { return cosHalfAngle_.size(); }
  double halfAngleRad(std::size_t i) const { return halfAngle_.at(i); }
  const Vec3& direction(std::size_t i) const { return direction_.at(i); }

  /// True if satellite i covers the surface point with unit direction
  /// `unitPoint` (ECI frame, matching the snapshot's positions).
  bool covers(const Vec3& unitPoint, std::size_t i) const noexcept {
    return unitPoint.dot(direction_[i]) >= cosHalfAngle_[i];
  }
  /// True if any satellite covers the point.
  bool anyCovers(const Vec3& unitPoint) const noexcept;
  /// Number of satellites covering the point, counting stops at
  /// `stopAfter` (pass size() for an exact count).
  int countCovering(const Vec3& unitPoint, int stopAfter) const noexcept;

 private:
  std::vector<Vec3> direction_;       ///< Unit sub-satellite directions.
  std::vector<double> cosHalfAngle_;  ///< cos(footprint half-angle).
  std::vector<double> halfAngle_;
};

/// LRU cache of recent snapshots keyed by (constellation hash, satellite
/// count, t quantized to 1 microsecond). Thread-safe; the global() instance
/// is shared by every snapshot consumer in the library so that e.g. the
/// worst-case and Monte-Carlo coverage estimators scoring the same
/// constellation at the same instant propagate it once.
class SnapshotCache {
 public:
  /// Default byte budget: generous enough that count-based eviction
  /// dominates for ordinary fleets (a 66k-satellite snapshot is ~7 MiB,
  /// so ~32 of them fit); the byte cap exists so mega-constellation
  /// sweeps cannot pin gigabytes of dead snapshots.
  static constexpr std::size_t kDefaultByteBudget =
      std::size_t{512} * 1024 * 1024;

  explicit SnapshotCache(std::size_t capacity = 32,
                         std::size_t byteBudget = kDefaultByteBudget);

  /// The snapshot of `elements` at `tSeconds` — cached, or built and
  /// inserted. Insertion evicts least-recently-used entries while either
  /// the entry count exceeds `capacity()` or the summed approxBytes()
  /// exceed `byteBudget()`; the newest entry itself is never evicted.
  /// When all entries are the same size the byte rule degenerates to a
  /// smaller effective capacity, so the eviction *order* is always plain
  /// LRU regardless of which limit binds.
  std::shared_ptr<const ConstellationSnapshot> at(
      const std::vector<OrbitalElements>& elements, double tSeconds);
  std::shared_ptr<const ConstellationSnapshot> at(
      const EphemerisService& ephemeris, double tSeconds);

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t byteBudget() const noexcept { return byteBudget_; }
  std::size_t size() const;
  /// Summed approxBytes() of the cached snapshots (insert-time values).
  std::size_t approxBytes() const;
  std::size_t hits() const;
  std::size_t misses() const;
  void clear();

  static SnapshotCache& global();

 private:
  struct Key {
    std::uint64_t hash;
    std::uint64_t count;
    std::int64_t tMicros;
    bool operator==(const Key&) const noexcept = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept;
  };
  struct Entry {
    Key key;
    std::shared_ptr<const ConstellationSnapshot> snapshot;
    std::size_t bytes = 0;  ///< approxBytes() at insert time.
  };

  /// Cache probe under the lock; returns the entry (promoted to MRU) or
  /// nullptr on a miss. Counts the hit/miss either way.
  std::shared_ptr<const ConstellationSnapshot> probe(const Key& key)
      OPENSPACE_EXCLUDES(mutex_);
  /// Build the snapshot (outside the lock) and insert it, resolving a
  /// racing duplicate insert in favor of the first.
  std::shared_ptr<const ConstellationSnapshot> insert(
      const Key& key, std::vector<OrbitalElements>&& elements, double tSeconds)
      OPENSPACE_EXCLUDES(mutex_);

  std::size_t capacity_;
  std::size_t byteBudget_;
  mutable Mutex mutex_;
  /// Front = most recently used.
  std::list<Entry> lru_ OPENSPACE_GUARDED_BY(mutex_);
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index_
      OPENSPACE_GUARDED_BY(mutex_);
  std::size_t bytes_ OPENSPACE_GUARDED_BY(mutex_) = 0;
  std::size_t hits_ OPENSPACE_GUARDED_BY(mutex_) = 0;
  std::size_t misses_ OPENSPACE_GUARDED_BY(mutex_) = 0;
};

}  // namespace openspace
