// Keplerian orbital elements and derived quantities.
#pragma once

#include <ostream>
#include <vector>

#include <openspace/geo/vec3.hpp>

namespace openspace {

/// Classical Keplerian elements of an Earth orbit.
///
/// The simulator models two-body motion (no J2/drag): the paper's routing
/// and coverage arguments rest only on orbits being *deterministic and
/// publicly predictable*, which two-body propagation provides exactly.
struct OrbitalElements {
  double semiMajorAxisM = 0.0;      ///< > Earth radius for LEO.
  double eccentricity = 0.0;        ///< [0, 1); most constellation orbits ~0.
  double inclinationRad = 0.0;      ///< [0, pi].
  double raanRad = 0.0;             ///< Right ascension of ascending node.
  double argPerigeeRad = 0.0;       ///< Argument of perigee.
  double meanAnomalyAtEpochRad = 0.0;

  /// Circular-orbit convenience factory: altitude above the mean-radius
  /// Earth, inclination, RAAN and the satellite's initial phase along the
  /// orbit. Throws InvalidArgumentError for non-positive altitude.
  static OrbitalElements circular(double altitudeM, double inclinationRad,
                                  double raanRad, double phaseRad);

  /// Orbital period, seconds (Kepler's third law).
  double periodS() const;

  /// Mean motion, rad/s.
  double meanMotionRadPerS() const;

  /// Altitude above the mean-radius Earth at perigee, meters.
  double perigeeAltitudeM() const;
};

/// Position and velocity in the ECI frame.
struct StateVector {
  Vec3 positionM;
  Vec3 velocityMps;
};

/// Solve Kepler's equation M = E - e*sin(E) for the eccentric anomaly E,
/// by Newton iteration with a bisection-safeguarded fallback for the rare
/// high-eccentricity cases where plain Newton oscillates. `meanAnomalyRad`
/// may be any real; result is within the same 2*pi revolution. Throws
/// InvalidArgumentError for e outside [0,1).
double solveKepler(double meanAnomalyRad, double eccentricity);

/// The range-reduced core of solveKepler: eccentric anomaly for a mean
/// anomaly already reduced to [-pi, pi], eccentricity in (0, 1) (callers
/// handle e == 0 and the revolution offset). Shared by the scalar spec and
/// the batch kernel's cold-start path so both stay bit-identical.
double solveKeplerReduced(double reducedMeanAnomalyRad, double eccentricity);

/// Two-body propagation: ECI state at `tSeconds` past epoch.
StateVector propagate(const OrbitalElements& el, double tSeconds);

/// ECI position only (cheaper call site; same math).
Vec3 positionEci(const OrbitalElements& el, double tSeconds);

/// Sub-satellite geodetic point (latitude/longitude on the rotating Earth)
/// at time t; altitude is the satellite's height above the ellipsoid.
struct GroundTrackPoint {
  double tSeconds = 0.0;
  double latitudeRad = 0.0;
  double longitudeRad = 0.0;
  double altitudeM = 0.0;
};

/// Sample the ground track over [t0S, t1S] at `stepS` intervals (inclusive of
/// t0S; the final sample is the last grid point <= t1S). Throws
/// InvalidArgumentError if stepS <= 0 or t1S < t0S.
std::vector<GroundTrackPoint> groundTrack(const OrbitalElements& el, double t0S,
                                          double t1S, double stepS);

std::ostream& operator<<(std::ostream& os, const OrbitalElements& el);

}  // namespace openspace
