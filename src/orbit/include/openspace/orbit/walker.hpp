// Walker constellation generators.
//
// The paper's §4 simulation uses an Iridium-like Walker *Star* constellation
// (near-polar planes spread over 180 degrees of RAAN) and cites the CBO
// 72-satellite, 6-plane, 80-degree-inclination configuration. Walker *Delta*
// (planes over 360 degrees, e.g. Starlink shells) is provided for contrast.
#pragma once

#include <vector>

#include <openspace/orbit/elements.hpp>

namespace openspace {

/// Parameters of a Walker constellation i:T/P/F.
struct WalkerConfig {
  int totalSatellites = 0;   ///< T: total satellite count.
  int planes = 0;            ///< P: number of orbital planes (must divide T).
  int phasing = 0;           ///< F: inter-plane phasing parameter in [0, P).
  double altitudeM = 0.0;    ///< Orbit altitude above mean-radius Earth.
  double inclinationRad = 0.0;
};

/// Generate a Walker Star constellation: P planes spread over 180 degrees of
/// RAAN (adjacent planes co-rotating except at the seam), T/P satellites
/// evenly phased per plane, inter-plane phase offset F*360/T degrees.
/// Satellite k*S+j is plane k, in-plane slot j. Throws InvalidArgumentError
/// on inconsistent parameters (P !| T, F outside [0,P), alt <= 0, ...).
std::vector<OrbitalElements> makeWalkerStar(const WalkerConfig& cfg);

/// Generate a Walker Delta constellation: planes spread over 360 degrees.
std::vector<OrbitalElements> makeWalkerDelta(const WalkerConfig& cfg);

/// The paper's baseline: Iridium (66 satellites, 6 planes, 780 km).
/// Inclination defaults to the real Iridium 86.4 degrees.
WalkerConfig iridiumConfig();

/// The CBO primer configuration the paper cites: 72 satellites, 12 per
/// plane in 6 planes, 80 degree inclination (altitude per CBO primer class,
/// we use 780 km to match the Iridium-like regime the paper simulates).
WalkerConfig cboConfig();

/// Generate `n` satellites on independent random circular orbits at the
/// given altitude: inclination, RAAN and phase drawn uniformly. This is the
/// paper's §4 setup ("randomly distributing satellites' orbital paths") and
/// models uncoordinated orbits from many independent providers.
std::vector<OrbitalElements> makeRandomConstellation(int n, double altitudeM,
                                                     class Rng& rng);

}  // namespace openspace
