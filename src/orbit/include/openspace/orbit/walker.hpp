// Walker constellation generators.
//
// The paper's §4 simulation uses an Iridium-like Walker *Star* constellation
// (near-polar planes spread over 180 degrees of RAAN) and cites the CBO
// 72-satellite, 6-plane, 80-degree-inclination configuration. Walker *Delta*
// (planes over 360 degrees, e.g. Starlink shells) is provided for contrast.
#pragma once

#include <cstddef>
#include <vector>

#include <openspace/core/ids.hpp>
#include <openspace/orbit/elements.hpp>

namespace openspace {

/// Parameters of a Walker constellation i:T/P/F.
struct WalkerConfig {
  int totalSatellites = 0;   ///< T: total satellite count.
  int planes = 0;            ///< P: number of orbital planes (must divide T).
  int phasing = 0;           ///< F: inter-plane phasing parameter in [0, P).
  double altitudeM = 0.0;    ///< Orbit altitude above mean-radius Earth.
  double inclinationRad = 0.0;
};

/// Generate a Walker Star constellation: P planes spread over 180 degrees of
/// RAAN (adjacent planes co-rotating except at the seam), T/P satellites
/// evenly phased per plane, inter-plane phase offset F*360/T degrees.
/// Satellite k*S+j is plane k, in-plane slot j. Throws InvalidArgumentError
/// on inconsistent parameters (P !| T, F outside [0,P), alt <= 0, ...).
std::vector<OrbitalElements> makeWalkerStar(const WalkerConfig& cfg);

/// Generate a Walker Delta constellation: planes spread over 360 degrees.
std::vector<OrbitalElements> makeWalkerDelta(const WalkerConfig& cfg);

/// The paper's baseline: Iridium (66 satellites, 6 planes, 780 km).
/// Inclination defaults to the real Iridium 86.4 degrees.
WalkerConfig iridiumConfig();

/// The CBO primer configuration the paper cites: 72 satellites, 12 per
/// plane in 6 planes, 80 degree inclination (altitude per CBO primer class,
/// we use 780 km to match the Iridium-like regime the paper simulates).
WalkerConfig cboConfig();

/// Plane/slot coordinates inside a Walker constellation.
///
/// makeWalkerStar/Delta lay satellites out as k*S+j == (plane k, slot j);
/// PlaneGrid makes that arithmetic typed so a PlaneId cannot be confused
/// with a satellite or slot index (the +grid ISL wiring is the consumer).
/// Throws InvalidArgumentError unless planes >= 1 divides satCount.
class PlaneGrid {
 public:
  PlaneGrid(std::size_t satCount, int planes);

  std::size_t planeCount() const noexcept { return planes_; }
  std::size_t satsPerPlane() const noexcept { return perPlane_; }

  /// Plane of a satellite index (0-based planes).
  PlaneId planeOf(std::size_t satIndex) const;
  /// In-plane slot of a satellite index.
  std::size_t slotOf(std::size_t satIndex) const;
  /// Satellite index of (plane, slot); the slot wraps modulo satsPerPlane
  /// (ring neighbors). Throws InvalidArgumentError for an unknown plane.
  std::size_t indexOf(PlaneId plane, std::size_t slot) const;
  /// True for the last plane (the Walker seam).
  bool isSeamPlane(PlaneId plane) const noexcept;
  /// The adjacent plane in RAAN order, wrapping across the seam.
  PlaneId nextPlane(PlaneId plane) const noexcept;

 private:
  std::size_t planes_ = 0;
  std::size_t perPlane_ = 0;
};

/// Generate `n` satellites on independent random circular orbits at the
/// given altitude: inclination, RAAN and phase drawn uniformly. This is the
/// paper's §4 setup ("randomly distributing satellites' orbital paths") and
/// models uncoordinated orbits from many independent providers.
std::vector<OrbitalElements> makeRandomConstellation(int n, double altitudeM,
                                                     class Rng& rng);

}  // namespace openspace
