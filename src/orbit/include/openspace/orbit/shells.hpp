// Multi-shell constellation composition.
//
// Mega-constellations are not one Walker shell: Starlink-class fleets stack
// several Star/Delta shells at distinct altitudes and inclinations, and the
// multi-layer space-information-network literature the roadmap cites models
// exactly this. MultiShellFleet composes per-shell Walker generators into a
// single fleet with one global, contiguous satellite index space, per-shell
// +grid ISL wiring (mirroring TopologyBuilder's PlusGrid semantics) and an
// optional cross-shell nearest-visible link policy. The composed element
// list hashes with the same constellationHash the snapshot/ephemeris caches
// key on, so multi-shell fleets share every existing cache layer for free.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include <openspace/orbit/walker.hpp>

namespace openspace {

class ConstellationSnapshot;

/// Which Walker family a shell is generated from.
enum class ShellKind {
  Star,   ///< Planes over 180 degrees of RAAN (polar-style, has a seam).
  Delta,  ///< Planes over 360 degrees of RAAN (Starlink-style).
};

/// One shell of a multi-shell fleet.
struct ShellSpec {
  ShellKind kind = ShellKind::Star;
  WalkerConfig walker;
  /// +grid wiring: also wire same-slot ISLs across the Walker seam plane.
  bool interPlaneSeam = false;
};

/// How satellites in different shells are linked.
enum class CrossShellLinkPolicy {
  /// Shells are isolated islands (ground-relay only).
  None,
  /// Each satellite links to its k nearest line-of-sight satellites in
  /// *other* shells (ties broken by ascending satellite index).
  NearestVisible,
};

struct MultiShellConfig {
  std::vector<ShellSpec> shells;
  CrossShellLinkPolicy crossShell = CrossShellLinkPolicy::None;
  int crossShellK = 1;  ///< For NearestVisible: links per satellite.
  /// Intra-shell +grid ISLs longer than this do not close.
  double maxIslRangeM = 6'000'000.0;
  /// Range cap for cross-shell candidate search (kept tighter than the
  /// intra-shell cap: cross-shell partners sit a few hundred km of
  /// altitude apart, and a tight cap keeps the spatial prune effective
  /// at 10k+ satellites).
  double crossShellMaxRangeM = 2'000'000.0;
  /// Sightlines must clear the Earth by this margin (matches the
  /// TopologyBuilder / IslTopology default of 80 km).
  double losClearanceM = 80'000.0;
};

/// One undirected ISL of a multi-shell fleet; a < b always.
struct ShellLink {
  std::size_t a = 0;
  std::size_t b = 0;
  double distanceM = 0.0;
  bool crossShell = false;
};

/// A composed multi-shell fleet with a contiguous global index space:
/// shell s occupies indices [shellBegin(s), shellBegin(s+1)). Shell order
/// is exactly MultiShellConfig::shells order, and the element list (hence
/// constellationHash) is order-dependent — reordering shells produces a
/// different fleet identity on purpose, so caches never alias two fleets
/// whose satellites are numbered differently.
class MultiShellFleet {
 public:
  /// Generates every shell (validating each WalkerConfig) and freezes the
  /// composed element list. Throws InvalidArgumentError on an empty shell
  /// list, non-positive ranges, or crossShellK < 1 under NearestVisible.
  explicit MultiShellFleet(MultiShellConfig cfg);

  std::size_t shellCount() const noexcept { return shellBegin_.size() - 1; }
  std::size_t size() const noexcept { return elements_.size(); }
  const MultiShellConfig& config() const noexcept { return cfg_; }
  const ShellSpec& spec(std::size_t shell) const;

  /// All satellites, shell-major, plane-major within a shell (the Walker
  /// generators' k*S+j layout with a per-shell base offset).
  const std::vector<OrbitalElements>& elements() const noexcept {
    return elements_;
  }
  /// constellationHash of elements() — the key every snapshot/ephemeris
  /// cache in the library uses.
  std::uint64_t elementsHash() const noexcept { return hash_; }

  /// First global index of a shell; shellBegin(shellCount()) == size().
  std::size_t shellBegin(std::size_t shell) const;
  /// [begin, end) global index range of a shell.
  std::pair<std::size_t, std::size_t> shellRange(std::size_t shell) const;
  /// Shell owning a global satellite index. Throws for out-of-range.
  std::size_t shellOf(std::size_t satIndex) const;
  /// Plane/slot arithmetic of a shell (local indices).
  const PlaneGrid& grid(std::size_t shell) const;

  /// ISLs at the snapshot's instant: per-shell +grid wiring (intra-plane
  /// ring neighbor plus same-slot next-plane neighbor, seam optional) with
  /// the range/line-of-sight predicate TopologyBuilder::PlusGrid applies,
  /// plus cross-shell links per policy. Deterministic: links are unique,
  /// a < b, sorted ascending by (a, b). The snapshot must be of exactly
  /// this fleet (hash-checked).
  std::vector<ShellLink> islLinks(const ConstellationSnapshot& snapshot) const;
  /// Convenience: snapshot via SnapshotCache::global() at time t.
  std::vector<ShellLink> islLinks(double tSeconds) const;

 private:
  MultiShellConfig cfg_;
  std::vector<OrbitalElements> elements_;
  /// shellCount()+1 entries; shell s is [shellBegin_[s], shellBegin_[s+1]).
  std::vector<std::size_t> shellBegin_;
  std::vector<PlaneGrid> grids_;
  std::uint64_t hash_ = 0;
};

}  // namespace openspace
