// Vectorized warm-started batch-propagation kernel.
//
// The 4-lane sweep kernel is the vector analogue of TimeSweep's
// per-satellite loop (propagation_batch.cpp): mean-anomaly advance,
// warm-started Newton solve of Kepler's equation, perifocal->ECI rotation,
// optional ECEF rotation. It is compiled twice from one shared template —
// an AVX2+FMA translation unit and a portable scalar-fallback translation
// unit whose lanes go through std::fma — and the two are bit-identical
// because every operation either side performs (add/sub/mul/div/sqrt/fma,
// round-to-nearest-even, compares, bitwise selects) is correctly rounded
// and executed in the same order.
//
// Against the scalar executable spec (TimeSweep with Kernel::ScalarSpec)
// the vector path is *not* bit-exact — it evaluates sin/cos with its own
// Cody-Waite reduction + minimax polynomials instead of libm — but the
// divergence is bounded and property-tested (tests/test_simd.cpp):
//   * e == 0 fleets: every position component agrees within a few ULP of
//     the orbital radius (the only divergence is the final sin/cos pair);
//   * e > 0 fleets: within 1e-13 * semi-major axis per component, the
//     same bound the warm-vs-cold solve contract already grants (both
//     solvers iterate to |step| < 1e-14).
// Valid for |mean anomaly| up to ~1e6 rad (Cody-Waite with 33-bit
// constant splits); every sweep in the repo is orders of magnitude below.
#pragma once

#include <cstddef>

#include <openspace/core/simd.hpp>
#include <openspace/geo/vec3.hpp>

namespace openspace::simd {

/// Borrowed structure-of-arrays view of a compiled fleet's time-invariant
/// terms (see FleetEphemeris; the arrays must outlive every kernel call).
struct FleetSoA {
  std::size_t count = 0;
  const double* semiMajorAxisM = nullptr;
  const double* eccentricity = nullptr;  // units: orbit shape (dimensionless)
  const double* meanMotionRadPerS = nullptr;
  const double* meanAnomalyAtEpochRad = nullptr;
  const double* semiMinorAxisM = nullptr;
  const double* p1 = nullptr;  // units: rotation-matrix entries
  const double* p2 = nullptr;  // units: rotation-matrix entries
  const double* p3 = nullptr;  // units: rotation-matrix entries
  const double* q1 = nullptr;  // units: rotation-matrix entries
  const double* q2 = nullptr;  // units: rotation-matrix entries
  const double* q3 = nullptr;  // units: rotation-matrix entries
};

/// True when this binary contains the AVX2 kernel translation unit *and*
/// the CPU reports AVX2+FMA.
bool avx2KernelAvailable() noexcept;

/// The level sweepRange() dispatches to: activeSimdLevel() degraded to
/// Scalar4 when avx2KernelAvailable() is false.
SimdLevel sweepKernelLevel() noexcept;

/// Warm-started vector sweep over satellites [begin, end) of the fleet:
/// writes ECI positions to outEci[i], optionally ECEF positions to
/// outEcef[i] (pass nullptr to skip; cosEarthRotation/sinEarthRotation
/// are cos/sin of the hoisted Earth rotation angle), and updates the
/// per-satellite warm state exactly like the scalar sweep (untouched for
/// e == 0 satellites; cold-solve fallback when unprimed or when a warm
/// Newton start misses the tolerance). Lane groups are fixed multiples of
/// 4 from `begin`, so results are independent of how callers chunk the
/// range as long as chunk boundaries are multiples of 4 (TimeSweep's
/// 64-satellite parallelFor chunks are).
void sweepRange(SimdLevel level, const FleetSoA& fleet, double tSeconds,
                bool primed, double* prevMeanRad, double* prevEccentricRad,
                Vec3* outEci, Vec3* outEcef,
                double cosEarthRotation,  // units: rotation-matrix entries
                double sinEarthRotation,  // units: rotation-matrix entries
                std::size_t begin, std::size_t end);

/// The two instantiations behind sweepRange(), exposed so the property
/// tests can pin them against each other bit-for-bit. sweepRangeAvx2
/// falls back to the scalar instantiation when the AVX2 translation unit
/// is not built for this target (never call it when the CPU lacks AVX2).
void sweepRangeScalar4(const FleetSoA& fleet, double tSeconds, bool primed,
                       double* prevMeanRad, double* prevEccentricRad,
                       Vec3* outEci, Vec3* outEcef,
                       double cosEarthRotation,  // units: rotation-matrix entries
                       double sinEarthRotation,  // units: rotation-matrix entries
                       std::size_t begin, std::size_t end);
void sweepRangeAvx2(const FleetSoA& fleet, double tSeconds, bool primed,
                    double* prevMeanRad, double* prevEccentricRad,
                    Vec3* outEci, Vec3* outEcef,
                    double cosEarthRotation,  // units: rotation-matrix entries
                    double sinEarthRotation,  // units: rotation-matrix entries
                    std::size_t begin, std::size_t end);

}  // namespace openspace::simd
