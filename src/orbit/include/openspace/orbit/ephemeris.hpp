// The public ephemeris service.
//
// The paper's routing design rests on the observation that "the radar-
// tracked orbital paths of satellites are well-known and readily available
// on public websites", giving every OpenSpace participant "a full public
// view of the topology of the entire network". EphemerisService is that
// shared registry: every provider publishes its satellites' orbital
// elements here, and any participant can query any satellite's position at
// any (past or future) time.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include <openspace/core/ids.hpp>
#include <openspace/orbit/elements.hpp>

namespace openspace {

/// One published ephemeris record.
struct EphemerisRecord {
  SatelliteId satellite{};
  ProviderId owner{};
  OrbitalElements elements;
};

/// Shared, append-only registry of every participating satellite's orbit.
class EphemerisService {
 public:
  /// Publish a satellite's orbit. Returns the assigned SatelliteId.
  SatelliteId publish(ProviderId owner, const OrbitalElements& elements);

  /// Publish with a caller-chosen id. Throws InvalidArgumentError if the id
  /// is already taken.
  void publishWithId(SatelliteId id, ProviderId owner,
                     const OrbitalElements& elements);

  /// Look up a record. Throws NotFoundError for unknown ids.
  const EphemerisRecord& record(SatelliteId id) const;

  /// True if the id is registered.
  bool contains(SatelliteId id) const noexcept;

  /// ECI position of a satellite at time t. Throws NotFoundError.
  Vec3 positionEci(SatelliteId id, double tSeconds) const;

  /// ECI state (position + velocity). Throws NotFoundError.
  StateVector state(SatelliteId id, double tSeconds) const;

  /// All registered satellite ids, in publication order.
  const std::vector<SatelliteId>& satellites() const noexcept { return order_; }

  /// Ids of satellites owned by `provider`, in publication order.
  std::vector<SatelliteId> satellitesOf(ProviderId provider) const;

  std::size_t size() const noexcept { return order_.size(); }

 private:
  std::unordered_map<SatelliteId, EphemerisRecord> records_;
  std::vector<SatelliteId> order_;
  SatelliteId::rep_type nextIdValue_ = 1;
};

}  // namespace openspace
