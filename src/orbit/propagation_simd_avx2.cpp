// AVX2+FMA instantiation of the sweep kernel.
//
// Compiled with -mavx2 -mfma on x86-64 (see src/orbit/CMakeLists.txt);
// on other targets — or if the compiler lacks the flags — this file
// degrades to a forwarder onto the scalar instantiation and reports the
// AVX2 kernel as not built. Only sweepRangeAvx2 may live here: nothing
// outside this translation unit is compiled with AVX2 flags, and the
// dispatcher guarantees it is never called on a CPU without AVX2+FMA.
#include <openspace/orbit/propagation_simd.hpp>

#if defined(__AVX2__) && defined(__FMA__)

#include <openspace/core/simd_lanes.hpp>

#include "propagation_simd_lanes.hpp"

namespace openspace::simd {

bool avx2KernelBuilt() noexcept { return true; }

void sweepRangeAvx2(const FleetSoA& fleet, double tSeconds, bool primed,
                    double* prevMeanRad, double* prevEccentricRad,
                    Vec3* outEci, Vec3* outEcef, double cosEarthRotation,
                    double sinEarthRotation, std::size_t begin,
                    std::size_t end) {
  sweepRangeLanes<Avx2Ops>(fleet, tSeconds, primed, prevMeanRad,
                           prevEccentricRad, outEci, outEcef,
                           cosEarthRotation, sinEarthRotation, begin, end);
}

}  // namespace openspace::simd

#else  // !(__AVX2__ && __FMA__)

namespace openspace::simd {

bool avx2KernelBuilt() noexcept { return false; }

void sweepRangeAvx2(const FleetSoA& fleet, double tSeconds, bool primed,
                    double* prevMeanRad, double* prevEccentricRad,
                    Vec3* outEci, Vec3* outEcef, double cosEarthRotation,
                    double sinEarthRotation, std::size_t begin,
                    std::size_t end) {
  sweepRangeScalar4(fleet, tSeconds, primed, prevMeanRad, prevEccentricRad,
                    outEci, outEcef, cosEarthRotation, sinEarthRotation, begin,
                    end);
}

}  // namespace openspace::simd

#endif
