#include <openspace/orbit/snapshot_delta.hpp>

#include <memory>

#include <openspace/core/hash.hpp>
#include <openspace/geo/error.hpp>
#include <openspace/orbit/snapshot.hpp>

namespace openspace {

SnapshotDelta diffIslTopology(const ConstellationSnapshot& prev,
                              const ConstellationSnapshot& next,
                              double maxRangeM, double losClearanceM) {
  if (prev.size() != next.size()) {
    throw InvalidArgumentError(
        "diffIslTopology: snapshots must cover the same fleet");
  }
  SnapshotDelta out;
  out.maxRangeM = maxRangeM;
  out.losClearanceM = losClearanceM;

  const std::shared_ptr<const IslTopology> a =
      prev.islTopology(maxRangeM, losClearanceM);
  const std::shared_ptr<const IslTopology> b =
      next.islTopology(maxRangeM, losClearanceM);

  const std::size_t n = prev.size();
  for (std::size_t i = 0; i < n; ++i) {
    const auto& pa = a->adjacency[i];
    const auto& pb = b->adjacency[i];
    // Both lists are sorted by neighbor index; merge them, counting each
    // undirected pair once (j > i).
    std::size_t x = 0;
    std::size_t y = 0;
    while (x < pa.size() || y < pb.size()) {
      const std::size_t ja = x < pa.size() ? pa[x].first : n;
      const std::size_t jb = y < pb.size() ? pb[y].first : n;
      if (ja < jb) {
        if (ja > i) out.removed.push_back({i, ja, pa[x].second});
        ++x;
      } else if (jb < ja) {
        if (jb > i) out.added.push_back({i, jb, pb[y].second});
        ++y;
      } else {
        if (ja > i) {
          // Bitwise range compare: the delta must notice *any* drift the
          // downstream cost model could observe, however small.
          if (bitsOf(pa[x].second) == bitsOf(pb[y].second)) {
            ++out.unchanged;
          } else {
            out.rangeChanged.push_back({i, ja, pb[y].second});
          }
        }
        ++x;
        ++y;
      }
    }
  }
  return out;
}

}  // namespace openspace
