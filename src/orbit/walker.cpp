#include <openspace/orbit/walker.hpp>

#include <numbers>

#include <openspace/geo/error.hpp>
#include <openspace/geo/rng.hpp>
#include <openspace/geo/units.hpp>

namespace openspace {

namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

void validate(const WalkerConfig& cfg) {
  if (cfg.totalSatellites <= 0) {
    throw InvalidArgumentError("Walker: total satellite count must be > 0");
  }
  if (cfg.planes <= 0 || cfg.totalSatellites % cfg.planes != 0) {
    throw InvalidArgumentError("Walker: plane count must divide total satellites");
  }
  if (cfg.phasing < 0 || cfg.phasing >= cfg.planes) {
    throw InvalidArgumentError("Walker: phasing F must be in [0, planes)");
  }
  if (cfg.altitudeM <= 0.0) {
    throw InvalidArgumentError("Walker: altitude must be > 0");
  }
}

std::vector<OrbitalElements> makeWalker(const WalkerConfig& cfg, double raanSpreadRad) {
  validate(cfg);
  const int perPlane = cfg.totalSatellites / cfg.planes;
  std::vector<OrbitalElements> sats;
  sats.reserve(static_cast<std::size_t>(cfg.totalSatellites));
  for (int p = 0; p < cfg.planes; ++p) {
    const double raan = raanSpreadRad * static_cast<double>(p) /
                        static_cast<double>(cfg.planes);
    for (int s = 0; s < perPlane; ++s) {
      // In-plane even spacing plus the Walker inter-plane phase offset
      // F * 2*pi / T per plane index.
      const double phase = kTwoPi * static_cast<double>(s) /
                               static_cast<double>(perPlane) +
                           kTwoPi * static_cast<double>(cfg.phasing) *
                               static_cast<double>(p) /
                               static_cast<double>(cfg.totalSatellites);
      sats.push_back(OrbitalElements::circular(cfg.altitudeM, cfg.inclinationRad,
                                               raan, phase));
    }
  }
  return sats;
}

}  // namespace

std::vector<OrbitalElements> makeWalkerStar(const WalkerConfig& cfg) {
  return makeWalker(cfg, std::numbers::pi);  // planes over 180 degrees
}

std::vector<OrbitalElements> makeWalkerDelta(const WalkerConfig& cfg) {
  return makeWalker(cfg, kTwoPi);  // planes over 360 degrees
}

WalkerConfig iridiumConfig() {
  WalkerConfig cfg;
  cfg.totalSatellites = 66;
  cfg.planes = 6;
  cfg.phasing = 2;
  cfg.altitudeM = km(780.0);
  cfg.inclinationRad = deg2rad(86.4);
  return cfg;
}

WalkerConfig cboConfig() {
  WalkerConfig cfg;
  cfg.totalSatellites = 72;
  cfg.planes = 6;
  cfg.phasing = 1;
  cfg.altitudeM = km(780.0);
  cfg.inclinationRad = deg2rad(80.0);
  return cfg;
}

PlaneGrid::PlaneGrid(std::size_t satCount, int planes) {
  if (planes < 1 || satCount == 0 ||
      satCount % static_cast<std::size_t>(planes) != 0) {
    throw InvalidArgumentError(
        "PlaneGrid: plane count must be >= 1 and divide the fleet size");
  }
  planes_ = static_cast<std::size_t>(planes);
  perPlane_ = satCount / planes_;
}

PlaneId PlaneGrid::planeOf(std::size_t satIndex) const {
  if (satIndex >= planes_ * perPlane_) {
    throw InvalidArgumentError("PlaneGrid::planeOf: satellite index out of range");
  }
  return PlaneId{static_cast<PlaneId::rep_type>(satIndex / perPlane_)};
}

std::size_t PlaneGrid::slotOf(std::size_t satIndex) const {
  if (satIndex >= planes_ * perPlane_) {
    throw InvalidArgumentError("PlaneGrid::slotOf: satellite index out of range");
  }
  return satIndex % perPlane_;
}

std::size_t PlaneGrid::indexOf(PlaneId plane, std::size_t slot) const {
  if (plane.value() >= planes_) {
    throw InvalidArgumentError("PlaneGrid::indexOf: unknown plane");
  }
  return static_cast<std::size_t>(plane.value()) * perPlane_ + slot % perPlane_;
}

bool PlaneGrid::isSeamPlane(PlaneId plane) const noexcept {
  return static_cast<std::size_t>(plane.value()) + 1 == planes_;
}

PlaneId PlaneGrid::nextPlane(PlaneId plane) const noexcept {
  return isSeamPlane(plane) ? PlaneId{0}
                            : PlaneId{static_cast<PlaneId::rep_type>(
                                  plane.value() + 1)};
}

std::vector<OrbitalElements> makeRandomConstellation(int n, double altitudeM,
                                                     Rng& rng) {
  if (n < 0) throw InvalidArgumentError("makeRandomConstellation: n must be >= 0");
  if (altitudeM <= 0.0) {
    throw InvalidArgumentError("makeRandomConstellation: altitude must be > 0");
  }
  std::vector<OrbitalElements> sats;
  sats.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    // Orbit-normal uniform on the sphere => unbiased random orbital planes.
    // acos(u) with u ~ U[-1,1] gives the inclination of such a plane.
    const double incl = std::acos(rng.uniform(-1.0, 1.0));
    const double raan = rng.uniform(0.0, kTwoPi);
    const double phase = rng.uniform(0.0, kTwoPi);
    sats.push_back(OrbitalElements::circular(altitudeM, incl, raan, phase));
  }
  return sats;
}

}  // namespace openspace
