// Portable lanes instantiation of the sweep kernel + runtime dispatch.
//
// ScalarOps (core/simd_lanes.hpp) emulates the AVX2 lane semantics
// exactly, so this instantiation and the AVX2 one are bit-identical by
// construction — tests/test_simd.cpp pins the two against each other.
#include <openspace/orbit/propagation_simd.hpp>

#include <openspace/core/simd_lanes.hpp>

#include "propagation_simd_lanes.hpp"

namespace openspace::simd {

void sweepRangeScalar4(const FleetSoA& fleet, double tSeconds, bool primed,
                       double* prevMeanRad, double* prevEccentricRad,
                       Vec3* outEci, Vec3* outEcef, double cosEarthRotation,
                       double sinEarthRotation, std::size_t begin,
                       std::size_t end) {
  sweepRangeLanes<ScalarOps>(fleet, tSeconds, primed, prevMeanRad,
                             prevEccentricRad, outEci, outEcef,
                             cosEarthRotation, sinEarthRotation, begin, end);
}

bool avx2KernelBuilt() noexcept;  // defined in propagation_simd_avx2.cpp

bool avx2KernelAvailable() noexcept {
  return avx2KernelBuilt() && simd_detail::cpuSupportsAvx2();
}

SimdLevel sweepKernelLevel() noexcept {
  return activeSimdLevel() == SimdLevel::Avx2 && avx2KernelAvailable()
             ? SimdLevel::Avx2
             : SimdLevel::Scalar4;
}

void sweepRange(SimdLevel level, const FleetSoA& fleet, double tSeconds,
                bool primed, double* prevMeanRad, double* prevEccentricRad,
                Vec3* outEci, Vec3* outEcef, double cosEarthRotation,
                double sinEarthRotation, std::size_t begin, std::size_t end) {
  if (level == SimdLevel::Avx2 && avx2KernelAvailable()) {
    sweepRangeAvx2(fleet, tSeconds, primed, prevMeanRad, prevEccentricRad,
                   outEci, outEcef, cosEarthRotation, sinEarthRotation, begin,
                   end);
  } else {
    sweepRangeScalar4(fleet, tSeconds, primed, prevMeanRad, prevEccentricRad,
                      outEci, outEcef, cosEarthRotation, sinEarthRotation,
                      begin, end);
  }
}

}  // namespace openspace::simd
