#include <openspace/orbit/maneuver.hpp>

#include <cmath>
#include <numbers>

#include <openspace/geo/error.hpp>
#include <openspace/geo/wgs84.hpp>

namespace openspace {

namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;
constexpr double kMinSafeRadiusM = wgs84::kMeanRadiusM + 160'000.0;

double periodOf(double semiMajorAxisM) {
  return kTwoPi * std::sqrt(std::pow(semiMajorAxisM, 3) / wgs84::kMuM3PerS2);
}
}  // namespace

double circularVelocityMps(double radiusM) {
  if (radiusM <= 0.0) {
    throw InvalidArgumentError("circularVelocityMps: radius must be > 0");
  }
  return std::sqrt(wgs84::kMuM3PerS2 / radiusM);
}

double hohmannDeltaVMps(double r1M, double r2M) {
  if (r1M <= 0.0 || r2M <= 0.0) {
    throw InvalidArgumentError("hohmannDeltaV: radii must be > 0");
  }
  if (r1M == r2M) return 0.0;
  const double mu = wgs84::kMuM3PerS2;
  const double aT = (r1M + r2M) / 2.0;  // transfer ellipse semi-major axis
  const double v1 = circularVelocityMps(r1M);
  const double v2 = circularVelocityMps(r2M);
  const double vPeri = std::sqrt(mu * (2.0 / r1M - 1.0 / aT));
  const double vApo = std::sqrt(mu * (2.0 / r2M - 1.0 / aT));
  return std::abs(vPeri - v1) + std::abs(v2 - vApo);
}

double hohmannTransferTimeS(double r1M, double r2M) {
  if (r1M <= 0.0 || r2M <= 0.0) {
    throw InvalidArgumentError("hohmannTransferTime: radii must be > 0");
  }
  return periodOf((r1M + r2M) / 2.0) / 2.0;
}

double planeChangeDeltaVMps(double radiusM, double angleRad) {
  const double v = circularVelocityMps(radiusM);
  return 2.0 * v * std::abs(std::sin(angleRad / 2.0));
}

PhasingPlan planPhasing(const OrbitalElements& orbit, double phaseChangeRad,
                        int revolutions) {
  if (revolutions < 1) {
    throw InvalidArgumentError("planPhasing: revolutions must be >= 1");
  }
  if (std::abs(phaseChangeRad) >= kTwoPi) {
    throw InvalidArgumentError("planPhasing: |phase| must be < 2*pi");
  }
  PhasingPlan plan;
  if (phaseChangeRad == 0.0) {
    plan.phasingSemiMajorAxisM = orbit.semiMajorAxisM;
    return plan;
  }
  // To drift ahead by dphi over k revolutions, fly an orbit whose period is
  // shorter by dphi/(2*pi*k): T_p = T * (1 - dphi / (2*pi*k)).
  const double t0 = orbit.periodS();
  const double tP =
      t0 * (1.0 - phaseChangeRad / (kTwoPi * static_cast<double>(revolutions)));
  const double aP = std::cbrt(wgs84::kMuM3PerS2 *
                              std::pow(tP / kTwoPi, 2));
  // The phasing ellipse keeps one apsis at the operational radius; its
  // other apsis is at 2*aP - r.
  const double rOther = 2.0 * aP - orbit.semiMajorAxisM;
  if (rOther < kMinSafeRadiusM) {
    throw InvalidArgumentError(
        "planPhasing: phasing orbit dips below the safe-altitude floor; use "
        "more revolutions");
  }
  // Enter and exit the phasing orbit: two burns of |v_ellipse - v_circ| at
  // the shared apsis.
  const double vCirc = circularVelocityMps(orbit.semiMajorAxisM);
  const double vEllipse = std::sqrt(wgs84::kMuM3PerS2 *
                                    (2.0 / orbit.semiMajorAxisM - 1.0 / aP));
  plan.deltaVMps = 2.0 * std::abs(vEllipse - vCirc);
  plan.durationS = tP * revolutions;
  plan.phasingSemiMajorAxisM = aP;
  return plan;
}

double propellantMassKg(double dryMassKg, double deltaVMps, double ispSeconds) {
  if (dryMassKg <= 0.0 || ispSeconds <= 0.0 || deltaVMps < 0.0) {
    throw InvalidArgumentError("propellantMassKg: non-physical inputs");
  }
  constexpr double g0 = 9.80665;
  return dryMassKg * (std::exp(deltaVMps / (ispSeconds * g0)) - 1.0);
}

SlotAcquisition planSlotAcquisition(double injectionAltM,
                                    const OrbitalElements& targetSlot,
                                    double targetPhaseErrorRad,
                                    double dryMassKg, double ispSeconds) {
  if (injectionAltM <= 0.0) {
    throw InvalidArgumentError("planSlotAcquisition: injection altitude <= 0");
  }
  const double rInj = wgs84::kMeanRadiusM + injectionAltM;
  const double rTgt = targetSlot.semiMajorAxisM;

  SlotAcquisition out;
  out.totalDeltaVMps = hohmannDeltaVMps(rInj, rTgt);
  out.totalDurationS = hohmannTransferTimeS(rInj, rTgt);
  if (targetPhaseErrorRad != 0.0) {
    // Use enough revolutions to keep the phasing orbit shallow (<= ~30 km
    // apsis offset per revolution as a rule of thumb).
    int revs = 1;
    PhasingPlan phasing;
    for (;; ++revs) {
      try {
        phasing = planPhasing(targetSlot, targetPhaseErrorRad, revs);
      } catch (const InvalidArgumentError&) {
        continue;  // too aggressive: add revolutions
      }
      if (std::abs(phasing.phasingSemiMajorAxisM - rTgt) < 60'000.0 ||
          revs >= 40) {
        break;
      }
    }
    out.totalDeltaVMps += phasing.deltaVMps;
    out.totalDurationS += phasing.durationS;
  }
  out.propellantKg = propellantMassKg(dryMassKg, out.totalDeltaVMps, ispSeconds);
  return out;
}

}  // namespace openspace
