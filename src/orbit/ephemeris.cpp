#include <openspace/orbit/ephemeris.hpp>

#include <openspace/geo/error.hpp>

namespace openspace {

SatelliteId EphemerisService::publish(ProviderId owner,
                                      const OrbitalElements& elements) {
  while (records_.contains(SatelliteId{nextIdValue_})) ++nextIdValue_;
  const SatelliteId id{nextIdValue_++};
  records_.emplace(id, EphemerisRecord{id, owner, elements});
  order_.push_back(id);
  return id;
}

void EphemerisService::publishWithId(SatelliteId id, ProviderId owner,
                                     const OrbitalElements& elements) {
  if (records_.contains(id)) {
    throw InvalidArgumentError("EphemerisService: satellite id already published");
  }
  records_.emplace(id, EphemerisRecord{id, owner, elements});
  order_.push_back(id);
}

const EphemerisRecord& EphemerisService::record(SatelliteId id) const {
  const auto it = records_.find(id);
  if (it == records_.end()) {
    throw NotFoundError("EphemerisService: unknown satellite id " +
                        std::to_string(id.value()));
  }
  return it->second;
}

bool EphemerisService::contains(SatelliteId id) const noexcept {
  return records_.contains(id);
}

Vec3 EphemerisService::positionEci(SatelliteId id, double tSeconds) const {
  return openspace::positionEci(record(id).elements, tSeconds);
}

StateVector EphemerisService::state(SatelliteId id, double tSeconds) const {
  return propagate(record(id).elements, tSeconds);
}

std::vector<SatelliteId> EphemerisService::satellitesOf(ProviderId provider) const {
  std::vector<SatelliteId> out;
  for (const SatelliteId id : order_) {
    if (records_.at(id).owner == provider) out.push_back(id);
  }
  return out;
}

}  // namespace openspace
