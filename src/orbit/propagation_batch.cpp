// The batch propagation kernel.
//
// Correctness contract: the cold-start path performs the exact
// floating-point operations of the scalar spec (orbit/elements.cpp
// `propagate`) in the same order — the precomputed terms are produced by
// the same expressions the scalar path evaluates per call, and the
// per-step arithmetic mirrors it token for token. Any change here must
// keep tests/test_propagation_batch.cpp's bit-for-bit pins green.
#include <openspace/orbit/propagation_batch.hpp>

#include <cmath>
#include <list>
#include <numbers>
#include <unordered_map>
#include <utility>

#include <openspace/concurrency/parallel.hpp>
#include <openspace/core/assert.hpp>
#include <openspace/core/thread_annotations.hpp>
#include <openspace/geo/error.hpp>
#include <openspace/geo/wgs84.hpp>
#include <openspace/orbit/ephemeris.hpp>
#include <openspace/orbit/propagation_simd.hpp>
#include <openspace/orbit/snapshot.hpp>

namespace openspace {

namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

/// Chunk of the satellite range per parallelFor task. Matches the snapshot
/// engine's decomposition; fixed so results are thread-count independent.
constexpr std::size_t kBatchChunk = 64;

/// Newton iteration on f(E) = E - e sin E - m from `guess` (the scalar
/// spec's inner loop): stop on |step| < 1e-14 (converged) or after 20
/// iterations. Returns whether the tolerance was reached; `guess` holds
/// the final iterate either way.
bool newtonKepler(double reducedMeanRad, double ecc, double& guess) noexcept {
  for (int i = 0; i < 20; ++i) {
    const double f = guess - ecc * std::sin(guess) - reducedMeanRad;
    const double fp = 1.0 - ecc * std::cos(guess);
    const double step = f / fp;
    guess -= step;
    if (std::abs(step) < 1e-14) return true;
  }
  return false;
}

/// Warm-started Kepler solve. `stateMeanRad`/`stateEccentricRad` carry the
/// previous step's reduced anomalies; when `primed` the Newton guess is the
/// previous eccentric anomaly advanced by the mean-anomaly delta (1-2
/// iterations for near-circular LEO). A warm start that misses the
/// convergence tolerance within the cap falls back to the scalar spec's
/// cold solve (solveKeplerReduced, bisection-safeguarded), so accuracy
/// never depends on the previous state being close.
double solveKeplerWarm(double meanAnomalyRad, double ecc, bool primed,
                       double& stateMeanRad, double& stateEccentricRad) {
  if (ecc == 0.0) return meanAnomalyRad;
  const double reducedRad = std::remainder(meanAnomalyRad, kTwoPi);
  double guess = 0.0;
  bool solved = false;
  if (primed) {
    guess = stateEccentricRad + std::remainder(reducedRad - stateMeanRad, kTwoPi);
    solved = newtonKepler(reducedRad, ecc, guess);
  }
  if (!solved) guess = solveKeplerReduced(reducedRad, ecc);
  stateMeanRad = reducedRad;
  stateEccentricRad = guess;
  return guess + (meanAnomalyRad - reducedRad);
}

}  // namespace

FleetEphemeris::FleetEphemeris(const std::vector<OrbitalElements>& elements)
    : count_(elements.size()) {
  semiMajorAxisM_.reserve(count_);
  eccentricity_.reserve(count_);
  meanMotionRadPerS_.reserve(count_);
  meanAnomalyAtEpochRad_.reserve(count_);
  semiMinorAxisM_.reserve(count_);
  p1_.reserve(count_);
  p2_.reserve(count_);
  p3_.reserve(count_);
  q1_.reserve(count_);
  q2_.reserve(count_);
  q3_.reserve(count_);
  for (const OrbitalElements& el : elements) {
    const double ecc = el.eccentricity;
    if (ecc < 0.0 || ecc >= 1.0) {
      throw InvalidArgumentError(
          "FleetEphemeris: eccentricity must be in [0, 1)");
    }
    const double a = el.semiMajorAxisM;
    semiMajorAxisM_.push_back(a);
    eccentricity_.push_back(ecc);
    meanMotionRadPerS_.push_back(el.meanMotionRadPerS());
    meanAnomalyAtEpochRad_.push_back(el.meanAnomalyAtEpochRad);
    // The scalar path evaluates yP = a * sqrt(1 - e^2) * sinE left to
    // right, so a * sqrt(1 - e^2) is exactly the term it forms first.
    semiMinorAxisM_.push_back(a * std::sqrt(1.0 - ecc * ecc));
    // Perifocal -> ECI rotation Rz(raan) * Rx(incl) * Rz(argPerigee),
    // entry expressions identical to the scalar path's r11..r32.
    const double cO = std::cos(el.raanRad), sO = std::sin(el.raanRad);
    const double cI = std::cos(el.inclinationRad), sI = std::sin(el.inclinationRad);
    const double cW = std::cos(el.argPerigeeRad), sW = std::sin(el.argPerigeeRad);
    p1_.push_back(cO * cW - sO * sW * cI);
    q1_.push_back(-cO * sW - sO * cW * cI);
    p2_.push_back(sO * cW + cO * sW * cI);
    q2_.push_back(-sO * sW + cO * cW * cI);
    p3_.push_back(sW * sI);
    q3_.push_back(cW * sI);
  }
}

namespace {
std::vector<OrbitalElements> elementsOf(const EphemerisService& ephemeris) {
  std::vector<OrbitalElements> elements;
  elements.reserve(ephemeris.size());
  for (const SatelliteId sid : ephemeris.satellites()) {
    elements.push_back(ephemeris.record(sid).elements);
  }
  return elements;
}
}  // namespace

FleetEphemeris::FleetEphemeris(const EphemerisService& ephemeris)
    : FleetEphemeris(elementsOf(ephemeris)) {}

Vec3 FleetEphemeris::positionFromEccentricAnomaly(
    std::size_t i, double eccentricAnomalyRad) const {
  const double cosE = std::cos(eccentricAnomalyRad);
  const double sinE = std::sin(eccentricAnomalyRad);
  const double xP = semiMajorAxisM_[i] * (cosE - eccentricity_[i]);
  const double yP = semiMinorAxisM_[i] * sinE;
  return {p1_[i] * xP + q1_[i] * yP, p2_[i] * xP + q2_[i] * yP,
          p3_[i] * xP + q3_[i] * yP};
}

void FleetEphemeris::positionsAt(double tSeconds,
                                 std::vector<Vec3>& outEci) const {
  outEci.resize(count_);
  parallelFor(count_, kBatchChunk, [&](std::size_t begin, std::size_t end) {
    OPENSPACE_ASSERT(begin <= end && end <= count_,
                     "parallelFor chunk must stay inside the fleet");
    for (std::size_t i = begin; i < end; ++i) {
      const double mRad =
          meanAnomalyAtEpochRad_[i] + meanMotionRadPerS_[i] * tSeconds;
      outEci[i] = positionFromEccentricAnomaly(
          i, solveKepler(mRad, eccentricity_[i]));
    }
  });
}

void FleetEphemeris::positionsAt(double tSeconds, std::vector<Vec3>& outEci,
                                 std::vector<Vec3>& outEcef) const {
  outEci.resize(count_);
  outEcef.resize(count_);
  // Earth rotation angle hoisted once per step; the per-satellite rotation
  // below is the body of eciToEcef verbatim.
  const double ang = -wgs84::kEarthRotationRadPerS * tSeconds;
  const double c = std::cos(ang);
  const double s = std::sin(ang);
  parallelFor(count_, kBatchChunk, [&](std::size_t begin, std::size_t end) {
    OPENSPACE_ASSERT(begin <= end && end <= count_,
                     "parallelFor chunk must stay inside the fleet");
    for (std::size_t i = begin; i < end; ++i) {
      const double mRad =
          meanAnomalyAtEpochRad_[i] + meanMotionRadPerS_[i] * tSeconds;
      const Vec3 eci = positionFromEccentricAnomaly(
          i, solveKepler(mRad, eccentricity_[i]));
      outEci[i] = eci;
      outEcef[i] = {c * eci.x - s * eci.y, s * eci.x + c * eci.y, eci.z};
    }
  });
}

Vec3 FleetEphemeris::positionAt(std::size_t i, double tSeconds) const {
  OPENSPACE_ASSERT(i < count_, "satellite index within the fleet");
  const double mRad =
      meanAnomalyAtEpochRad_[i] + meanMotionRadPerS_[i] * tSeconds;
  return positionFromEccentricAnomaly(i, solveKepler(mRad, eccentricity_[i]));
}

namespace {

struct FleetCacheKey {
  std::uint64_t hash;
  std::uint64_t count;
  bool operator==(const FleetCacheKey&) const noexcept = default;
};

struct FleetCacheKeyHash {
  std::size_t operator()(const FleetCacheKey& k) const noexcept {
    std::uint64_t h = k.hash ^ (k.count * 0x9E3779B97F4A7C15ull);
    h ^= h >> 32;
    return static_cast<std::size_t>(h);
  }
};

/// Process-wide LRU of compiled fleets (analogue of SnapshotCache, one
/// level down): the temporal router's interval grid, repeated coverage
/// scoring and handover planning all recompile the same constellation
/// otherwise. Compilation happens outside the lock; a racing duplicate
/// insert resolves in favor of the first. Eviction is bounded by both an
/// entry count and an approximate byte budget (see
/// FleetEphemeris::setCompiledCacheByteBudget).
class FleetEphemerisCache {
 public:
  std::shared_ptr<const FleetEphemeris> at(
      const std::vector<OrbitalElements>& elements, std::uint64_t hash)
      OPENSPACE_EXCLUDES(mutex_) {
    const FleetCacheKey key{hash, elements.size()};
    {
      MutexLock lock(mutex_);
      const auto it = index_.find(key);
      if (it != index_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second);
        return lru_.front().fleet;
      }
    }
    auto fleet = std::make_shared<const FleetEphemeris>(elements);
    MutexLock lock(mutex_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      return lru_.front().fleet;
    }
    const std::size_t entryBytes = fleet->approxBytes();
    lru_.emplace_front(Entry{key, std::move(fleet), entryBytes});
    index_.emplace(key, lru_.begin());
    bytes_ += entryBytes;
    // The just-inserted entry is exempt so an oversized fleet still caches.
    while (lru_.size() > 1 &&
           (lru_.size() > kCapacity || bytes_ > byteBudget_)) {
      bytes_ -= lru_.back().bytes;
      index_.erase(lru_.back().key);
      lru_.pop_back();
    }
    return lru_.front().fleet;
  }

  std::size_t setByteBudget(std::size_t budget) OPENSPACE_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    const std::size_t previous = byteBudget_;
    byteBudget_ = budget == 0 ? 1 : budget;
    // Apply the new budget immediately (same tail rule as insert).
    while (lru_.size() > 1 && bytes_ > byteBudget_) {
      bytes_ -= lru_.back().bytes;
      index_.erase(lru_.back().key);
      lru_.pop_back();
    }
    return previous;
  }

  std::size_t approxBytes() const OPENSPACE_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return bytes_;
  }

  static FleetEphemerisCache& global() {
    static FleetEphemerisCache cache;
    return cache;
  }

 private:
  static constexpr std::size_t kCapacity = 64;
  static constexpr std::size_t kDefaultByteBudget =
      std::size_t{256} * 1024 * 1024;
  struct Entry {
    FleetCacheKey key;
    std::shared_ptr<const FleetEphemeris> fleet;
    std::size_t bytes = 0;
  };
  mutable Mutex mutex_;
  std::list<Entry> lru_ OPENSPACE_GUARDED_BY(mutex_);
  std::unordered_map<FleetCacheKey, std::list<Entry>::iterator,
                     FleetCacheKeyHash>
      index_ OPENSPACE_GUARDED_BY(mutex_);
  std::size_t bytes_ OPENSPACE_GUARDED_BY(mutex_) = 0;
  std::size_t byteBudget_ OPENSPACE_GUARDED_BY(mutex_) = kDefaultByteBudget;
};

}  // namespace

std::shared_ptr<const FleetEphemeris> FleetEphemeris::compiled(
    const std::vector<OrbitalElements>& elements, std::uint64_t hash) {
  OPENSPACE_ASSERT(hash == constellationHash(elements),
                   "compiled(): hash must be constellationHash(elements)");
  return FleetEphemerisCache::global().at(elements, hash);
}

std::size_t FleetEphemeris::setCompiledCacheByteBudget(std::size_t bytes) {
  return FleetEphemerisCache::global().setByteBudget(bytes);
}

std::size_t FleetEphemeris::compiledCacheApproxBytes() {
  return FleetEphemerisCache::global().approxBytes();
}

TimeSweep::TimeSweep(const FleetEphemeris& fleet) : fleet_(&fleet) {}

TimeSweep::TimeSweep(std::shared_ptr<const FleetEphemeris> fleet)
    : owned_(std::move(fleet)), fleet_(owned_.get()) {
  if (!fleet_) throw InvalidArgumentError("TimeSweep: null fleet");
}

void TimeSweep::advance(double tSeconds, std::vector<Vec3>& outEci) {
  advanceImpl(tSeconds, outEci, nullptr);
}

void TimeSweep::advance(double tSeconds, std::vector<Vec3>& outEci,
                        std::vector<Vec3>& outEcef) {
  advanceImpl(tSeconds, outEci, &outEcef);
}

void TimeSweep::advanceImpl(double tSeconds, std::vector<Vec3>& outEci,
                            std::vector<Vec3>* outEcef) {
  const FleetEphemeris& f = *fleet_;
  const std::size_t n = f.count_;
  outEci.resize(n);
  if (outEcef) outEcef->resize(n);
  if (!primed_) {
    prevMeanRad_.assign(n, 0.0);
    prevEccentricRad_.assign(n, 0.0);
  }
  const bool primed = primed_;
  double c = 1.0, s = 0.0;
  if (outEcef) {
    const double ang = -wgs84::kEarthRotationRadPerS * tSeconds;
    c = std::cos(ang);
    s = std::sin(ang);
  }
  if (kernel_ == Kernel::Simd) {
    // Vectorized kernel: same warm-state contract, dispatched once per
    // advance (the level is process-stable, so serial and parallel runs
    // execute the same instructions). kBatchChunk is a multiple of the
    // 4-satellite lane group, so lane grouping — and therefore every
    // bit of the result — is independent of the thread count.
    static_assert(kBatchChunk % 4 == 0,
                  "SIMD lane groups must align with parallelFor chunks");
    const simd::FleetSoA view{
        f.count_,
        f.semiMajorAxisM_.data(),
        f.eccentricity_.data(),
        f.meanMotionRadPerS_.data(),
        f.meanAnomalyAtEpochRad_.data(),
        f.semiMinorAxisM_.data(),
        f.p1_.data(),
        f.p2_.data(),
        f.p3_.data(),
        f.q1_.data(),
        f.q2_.data(),
        f.q3_.data()};
    const SimdLevel level = simd::sweepKernelLevel();
    parallelFor(n, kBatchChunk, [&](std::size_t begin, std::size_t end) {
      OPENSPACE_ASSERT(begin <= end && end <= n,
                       "parallelFor chunk must stay inside the fleet");
      simd::sweepRange(level, view, tSeconds, primed, prevMeanRad_.data(),
                       prevEccentricRad_.data(), outEci.data(),
                       outEcef != nullptr ? outEcef->data() : nullptr, c, s,
                       begin, end);
    });
    primed_ = true;
    return;
  }
  parallelFor(n, kBatchChunk, [&](std::size_t begin, std::size_t end) {
    OPENSPACE_ASSERT(begin <= end && end <= n,
                     "parallelFor chunk must stay inside the fleet");
    for (std::size_t i = begin; i < end; ++i) {
      const double mRad =
          f.meanAnomalyAtEpochRad_[i] + f.meanMotionRadPerS_[i] * tSeconds;
      const double eAnomRad = solveKeplerWarm(
          mRad, f.eccentricity_[i], primed, prevMeanRad_[i], prevEccentricRad_[i]);
      const Vec3 eci = f.positionFromEccentricAnomaly(i, eAnomRad);
      outEci[i] = eci;
      if (outEcef) {
        (*outEcef)[i] = {c * eci.x - s * eci.y, s * eci.x + c * eci.y, eci.z};
      }
    }
  });
  primed_ = true;
}

SatelliteSweep::SatelliteSweep(const OrbitalElements& elements) {
  reset(elements);
}

void SatelliteSweep::reset(const OrbitalElements& elements) {
  const double ecc = elements.eccentricity;
  if (ecc < 0.0 || ecc >= 1.0) {
    throw InvalidArgumentError("SatelliteSweep: eccentricity must be in [0, 1)");
  }
  const double a = elements.semiMajorAxisM;
  semiMajorAxisM_ = a;
  eccentricity_ = ecc;
  meanMotionRadPerS_ = elements.meanMotionRadPerS();
  meanAnomalyAtEpochRad_ = elements.meanAnomalyAtEpochRad;
  semiMinorAxisM_ = a * std::sqrt(1.0 - ecc * ecc);
  const double cO = std::cos(elements.raanRad), sO = std::sin(elements.raanRad);
  const double cI = std::cos(elements.inclinationRad);
  const double sI = std::sin(elements.inclinationRad);
  const double cW = std::cos(elements.argPerigeeRad);
  const double sW = std::sin(elements.argPerigeeRad);
  p1_ = cO * cW - sO * sW * cI;
  q1_ = -cO * sW - sO * cW * cI;
  p2_ = sO * cW + cO * sW * cI;
  q2_ = -sO * sW + cO * cW * cI;
  p3_ = sW * sI;
  q3_ = cW * sI;
  // Drop the warm start: the next positionEciAt runs the cold Kepler
  // solve, exactly like a freshly constructed sweep.
  prevMeanRad_ = 0.0;
  prevEccentricRad_ = 0.0;
  primed_ = false;
}

Vec3 SatelliteSweep::positionEciAt(double tSeconds) {
  const double mRad = meanAnomalyAtEpochRad_ + meanMotionRadPerS_ * tSeconds;
  const double eAnomRad = solveKeplerWarm(mRad, eccentricity_, primed_,
                                          prevMeanRad_, prevEccentricRad_);
  primed_ = true;
  const double cosE = std::cos(eAnomRad);
  const double sinE = std::sin(eAnomRad);
  const double xP = semiMajorAxisM_ * (cosE - eccentricity_);
  const double yP = semiMinorAxisM_ * sinE;
  return {p1_ * xP + q1_ * yP, p2_ * xP + q2_ * yP, p3_ * xP + q3_ * yP};
}

}  // namespace openspace
