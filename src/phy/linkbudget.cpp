#include <openspace/phy/linkbudget.hpp>

#include <cmath>

#include <openspace/geo/error.hpp>
#include <openspace/geo/units.hpp>

namespace openspace {

double freeSpacePathLossDb(double distanceM, double frequencyHz) {
  if (distanceM <= 0.0 || frequencyHz <= 0.0) {
    throw InvalidArgumentError("freeSpacePathLossDb: inputs must be > 0");
  }
  return 20.0 * std::log10(4.0 * std::numbers::pi * distanceM * frequencyHz /
                           kSpeedOfLightMps);
}

double thermalNoiseW(double bandwidthHz, double noiseTempK) {
  if (bandwidthHz <= 0.0 || noiseTempK <= 0.0) {
    throw InvalidArgumentError("thermalNoiseW: inputs must be > 0");
  }
  return kBoltzmannJPerK * noiseTempK * bandwidthHz;
}

LinkBudgetResult computeLinkBudget(const LinkBudgetInput& in) {
  if (in.txPowerW <= 0.0) {
    throw InvalidArgumentError("computeLinkBudget: tx power must be > 0");
  }
  const BandInfo& info = bandInfo(in.band);
  const double bw = (in.bandwidthHz > 0.0) ? in.bandwidthHz : info.channelBandwidthHz;

  LinkBudgetResult out;
  out.pathLossDb = freeSpacePathLossDb(in.distanceM, info.carrierHz);
  out.receivedPowerDbw = wattsToDbw(in.txPowerW) + in.txAntennaGainDb +
                         in.rxAntennaGainDb - out.pathLossDb -
                         in.extraLossesDb - in.atmosphericLossDb;
  out.noisePowerDbw = wattsToDbw(thermalNoiseW(bw, in.systemNoiseTempK));
  out.snrDb = out.receivedPowerDbw - out.noisePowerDbw;
  out.shannonCapacityBps = bw * std::log2(1.0 + dbToRatio(out.snrDb));
  return out;
}

const std::vector<Modcod>& modcodLadder() {
  // DVB-S2-like ladder: QPSK 1/4 up to 32APSK 9/10. Required SNRs follow the
  // published Es/N0 thresholds (rounded), efficiencies are information bits
  // per symbol.
  static const std::vector<Modcod> ladder = {
      {"QPSK-1/4", -2.35, 0.49},   {"QPSK-1/2", 1.00, 0.99},
      {"QPSK-3/4", 4.03, 1.49},    {"8PSK-2/3", 6.62, 1.98},
      {"8PSK-5/6", 9.35, 2.48},    {"16APSK-3/4", 10.21, 2.97},
      {"16APSK-8/9", 12.89, 3.52}, {"32APSK-4/5", 13.64, 3.95},
      {"32APSK-9/10", 16.05, 4.45}};
  return ladder;
}

const Modcod* selectModcod(double snrDb) {
  const Modcod* best = nullptr;
  for (const Modcod& m : modcodLadder()) {
    if (snrDb >= m.requiredSnrDb) best = &m;
  }
  return best;
}

double modcodRateBps(double snrDb, double bandwidthHz) {
  if (bandwidthHz <= 0.0) {
    throw InvalidArgumentError("modcodRateBps: bandwidth must be > 0");
  }
  const Modcod* m = selectModcod(snrDb);
  return m ? m->spectralEfficiency * bandwidthHz : 0.0;
}

CapacityKernel::CapacityKernel(const TerminalSpec& tx, const TerminalSpec& rx,
                               double extraLossesDb)
    : txGainDb_(tx.antennaGainDb),
      rxGainDb_(rx.antennaGainDb),
      extraLossesDb_(extraLossesDb) {
  if (tx.txPowerW <= 0.0) {
    throw InvalidArgumentError("computeLinkBudget: tx power must be > 0");
  }
  const BandInfo& info = bandInfo(tx.band);
  carrierHz_ = info.carrierHz;
  // Cached function results, not re-derived formulas: each is the exact
  // double the full path recomputes on every call.
  txPowerDbw_ = wattsToDbw(tx.txPowerW);
  noiseDbw_ = wattsToDbw(
      thermalNoiseW(info.channelBandwidthHz, rx.systemNoiseTempK));
  for (const Modcod& m : modcodLadder()) {
    tiers_.push_back({m.requiredSnrDb,
                      m.spectralEfficiency * info.channelBandwidthHz});
  }
}

double CapacityKernel::rateBps(double distanceM,
                               double atmosphericLossDb) const {
  // Same expression, same evaluation order as computeLinkBudget(): only the
  // constant subterms are cached and the unused Shannon capacity skipped.
  const double pathLossDb = freeSpacePathLossDb(distanceM, carrierHz_);
  const double receivedDbw = txPowerDbw_ + txGainDb_ + rxGainDb_ -
                             pathLossDb - extraLossesDb_ - atmosphericLossDb;
  const double snrDb = receivedDbw - noiseDbw_;
  // selectModcod keeps the last tier whose threshold passes; with the
  // ladder's thresholds strictly ascending that is the first passing tier
  // scanned from the top, so the reverse scan can exit early — same tier,
  // same double, fewer comparisons on the common high-SNR links.
  for (auto it = tiers_.rbegin(); it != tiers_.rend(); ++it) {
    if (snrDb >= it->requiredSnrDb) return it->rateBps;
  }
  return 0.0;
}

}  // namespace openspace
