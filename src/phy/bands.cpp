#include <openspace/phy/bands.hpp>

#include <array>
#include <cmath>

#include <openspace/geo/error.hpp>
#include <openspace/geo/units.hpp>

namespace openspace {

namespace {

constexpr std::array<BandInfo, 5> kBands = {{
    {Band::Uhf, "UHF", 401e6, megahertz(0.5), true, true, 0.03},
    {Band::S, "S", 2.2e9, megahertz(5.0), true, true, 0.05},
    {Band::Ku, "Ku", 12.5e9, megahertz(250.0), false, true, 0.3},
    {Band::Ka, "Ka", 20.0e9, megahertz(500.0), false, true, 0.6},
    {Band::Optical, "optical", 1.934e14, gigahertz(10.0), true, false, 0.0},
}};

}  // namespace

const BandInfo& bandInfo(Band b) noexcept {
  return kBands[static_cast<std::size_t>(b)];
}

std::string_view bandName(Band b) noexcept { return bandInfo(b).name; }

double atmosphericLossDb(Band b, double elevationRad, double rainMmPerHour) {
  if (elevationRad <= 0.0) {
    throw InvalidArgumentError("atmosphericLossDb: elevation must be > 0");
  }
  if (rainMmPerHour < 0.0) {
    throw InvalidArgumentError("atmosphericLossDb: rain rate must be >= 0");
  }
  const BandInfo& info = bandInfo(b);
  if (b == Band::Optical) return 0.0;  // ISL-only band, vacuum path.
  // Cosecant model: zenith loss scaled by slant path through troposphere.
  const double slantFactor = 1.0 / std::max(std::sin(elevationRad), 0.05);
  double loss = info.zenithAttenuationDb * slantFactor;
  if (rainMmPerHour > 0.0) {
    // Simplified ITU-R P.838 power law gamma = k * R^alpha (dB/km) with
    // frequency-dependent k; effective rain path ~4 km / sin(elevation).
    const double fGhz = info.carrierHz / 1e9;
    const double k = 4.21e-5 * std::pow(fGhz, 2.42);  // valid ~3-54 GHz
    const double alpha = 1.41 * std::pow(fGhz, -0.0779);
    const double gammaDbPerKm = k * std::pow(rainMmPerHour, alpha);
    loss += gammaDbPerKm * 4.0 * slantFactor;
  }
  return loss;
}

}  // namespace openspace
