#include <openspace/phy/terminal.hpp>

#include <cmath>

#include <openspace/geo/error.hpp>
#include <openspace/geo/units.hpp>

namespace openspace {

double laserGainDb(double beamDivergenceRad) {
  if (beamDivergenceRad <= 0.0) {
    throw InvalidArgumentError("laserGainDb: divergence must be > 0");
  }
  const double linear = std::pow(4.0 / beamDivergenceRad, 2);
  return 10.0 * std::log10(linear);
}

namespace terminals {

TerminalSpec uhfIsl() {
  TerminalSpec t;
  t.kind = TerminalKind::RfTransceiver;
  t.model = "OS-UHF-1";
  t.band = Band::Uhf;
  t.txPowerW = 2.0;
  t.antennaGainDb = 2.0;
  t.systemNoiseTempK = 350.0;
  t.massKg = 0.3;
  t.volumeM3 = 0.0004;
  t.unitCostUsd = 8'000.0;
  t.powerDrawW = 6.0;
  return t;
}

TerminalSpec sBandIsl() {
  TerminalSpec t;
  t.kind = TerminalKind::RfTransceiver;
  t.model = "OS-S-1";
  t.band = Band::S;
  // Sized so the standardized radio closes Walker-grid ISL distances
  // (~4,000 km intra-plane at 780 km altitude) at a usable MODCOD: a small
  // phased patch array (18 dB) and a 10 W PA.
  t.txPowerW = 10.0;
  t.antennaGainDb = 18.0;
  t.systemNoiseTempK = 350.0;
  t.massKg = 1.8;
  t.volumeM3 = 0.002;
  t.unitCostUsd = 55'000.0;
  t.powerDrawW = 28.0;
  return t;
}

TerminalSpec laserIsl() {
  TerminalSpec t;
  t.kind = TerminalKind::LaserTerminal;
  t.model = "OS-LCT-80";  // ConLCT80-class unit cited by the paper.
  t.band = Band::Optical;
  t.txPowerW = 2.0;
  t.beamDivergenceRad = 15e-6;  // ~15 microradian beam.
  t.antennaGainDb = laserGainDb(t.beamDivergenceRad);
  t.systemNoiseTempK = 600.0;  // effective detector noise temperature
  t.massKg = 15.0;             // paper: "at least 15kg"
  t.volumeM3 = 0.0234;         // paper: "0.0234 sq.m of volume" (datasheet m^3)
  t.unitCostUsd = 500'000.0;   // paper: "$500,000 per terminal"
  t.powerDrawW = 80.0;
  t.slewRateRadPerS = deg2rad(1.0);
  return t;
}

TerminalSpec kuGround() {
  TerminalSpec t;
  t.kind = TerminalKind::RfTransceiver;
  t.model = "OS-KU-SAT";
  t.band = Band::Ku;
  t.txPowerW = 20.0;
  t.antennaGainDb = 33.0;
  t.systemNoiseTempK = 450.0;
  t.massKg = 4.0;
  t.volumeM3 = 0.006;
  t.unitCostUsd = 120'000.0;
  t.powerDrawW = 60.0;
  return t;
}

TerminalSpec kuGroundStation() {
  TerminalSpec t;
  t.kind = TerminalKind::RfTransceiver;
  t.model = "OS-KU-GS";
  t.band = Band::Ku;
  t.txPowerW = 100.0;
  t.antennaGainDb = 48.0;  // ~3.5 m dish
  t.systemNoiseTempK = 150.0;
  t.massKg = 900.0;
  t.volumeM3 = 12.0;
  t.unitCostUsd = 650'000.0;
  t.powerDrawW = 400.0;
  return t;
}

TerminalSpec kuUserTerminal() {
  TerminalSpec t;
  t.kind = TerminalKind::RfTransceiver;
  t.model = "OS-KU-UT";
  t.band = Band::Ku;
  t.txPowerW = 4.0;
  t.antennaGainDb = 33.0;  // phased array
  t.systemNoiseTempK = 300.0;
  t.massKg = 3.0;
  t.volumeM3 = 0.01;
  t.unitCostUsd = 600.0;
  t.powerDrawW = 75.0;
  return t;
}

}  // namespace terminals
}  // namespace openspace
