#include <openspace/phy/power.hpp>

#include <algorithm>

#include <openspace/geo/error.hpp>
#include <openspace/geo/units.hpp>

namespace openspace {

PowerBudget::PowerBudget(double generationW, double batteryWh, double busLoadW)
    : generationW_(generationW),
      batteryCapacityWh_(batteryWh),
      batteryChargeWh_(batteryWh),
      busLoadW_(busLoadW) {
  if (generationW <= 0.0 || batteryWh < 0.0 || busLoadW < 0.0) {
    throw InvalidArgumentError("PowerBudget: non-physical parameters");
  }
  if (busLoadW >= generationW) {
    throw InvalidArgumentError(
        "PowerBudget: bus load must leave headroom below generation");
  }
}

double PowerBudget::availableW() const noexcept {
  return generationW_ - busLoadW_ - committedW_;
}

bool PowerBudget::canCommit(double loadW) const noexcept {
  return loadW > 0.0 && loadW <= availableW();
}

int PowerBudget::commit(double loadW, std::string label) {
  if (loadW <= 0.0) throw InvalidArgumentError("PowerBudget::commit: load <= 0");
  if (loadW > availableW()) {
    throw CapacityError("PowerBudget: load " + std::to_string(loadW) +
                        " W exceeds available " + std::to_string(availableW()) +
                        " W (" + label + ")");
  }
  const int id = nextId_++;
  loads_.emplace_back(id, loadW);
  labels_.emplace_back(id, std::move(label));
  committedW_ += loadW;
  return id;
}

void PowerBudget::release(int commitmentId) {
  const auto it = std::find_if(loads_.begin(), loads_.end(),
                               [&](const auto& p) { return p.first == commitmentId; });
  if (it == loads_.end()) {
    throw NotFoundError("PowerBudget::release: unknown commitment id");
  }
  committedW_ -= it->second;
  loads_.erase(it);
  labels_.erase(std::find_if(labels_.begin(), labels_.end(), [&](const auto& p) {
    return p.first == commitmentId;
  }));
}

void PowerBudget::drawEnergy(double energyWh) {
  if (energyWh < 0.0) throw InvalidArgumentError("drawEnergy: negative energy");
  if (energyWh > batteryChargeWh_) {
    throw CapacityError("PowerBudget: battery cannot supply " +
                        std::to_string(energyWh) + " Wh");
  }
  batteryChargeWh_ -= energyWh;
}

void PowerBudget::recharge(double durationS) {
  if (durationS < 0.0) throw InvalidArgumentError("recharge: negative duration");
  const double surplusW = std::max(0.0, availableW());
  batteryChargeWh_ = std::min(batteryCapacityWh_,
                              batteryChargeWh_ + surplusW * durationS / 3600.0);
}

}  // namespace openspace
