// Communication terminal models.
//
// The paper's interoperability floor (§2.1): every OpenSpace satellite must
// carry at least an RF ISL transceiver; laser terminals are optional and
// expensive (~$500,000, >= 15 kg, 0.0234 m^3 per the ConLCT80 datasheet the
// paper cites), which prices them out of small spacecraft. The catalog here
// encodes those trade-offs so fleet composition studies can sweep them.
#pragma once

#include <string>
#include <vector>

#include <openspace/phy/bands.hpp>

namespace openspace {

/// Kind of terminal hardware.
enum class TerminalKind { RfTransceiver, LaserTerminal };

/// A communication terminal specification (one physical unit).
struct TerminalSpec {
  TerminalKind kind = TerminalKind::RfTransceiver;
  std::string model;
  Band band = Band::S;
  double txPowerW = 0.0;
  double antennaGainDb = 0.0;       ///< Tx == Rx gain (reciprocal antennas).
  double systemNoiseTempK = 290.0;
  double massKg = 0.0;
  double volumeM3 = 0.0;
  double unitCostUsd = 0.0;
  double powerDrawW = 0.0;          ///< Bus power consumed while the link is active.
  /// Laser only: half-power beam divergence; narrow beams demand PAT.
  double beamDivergenceRad = 0.0;
  /// Laser only: gimbal slew rate used by the PAT model.
  double slewRateRadPerS = 0.0;

  bool isOptical() const noexcept { return kind == TerminalKind::LaserTerminal; }
};

/// Catalog of standardized terminals. These are the "minimal hardware
/// requirement" units the paper's §2.1 standardization calls for.
namespace terminals {

/// UHF ISL radio: the absolute interoperability floor. Cheap, heavy-duty,
/// low rate. Fits any spacecraft down to CubeSat class.
TerminalSpec uhfIsl();

/// S-band ISL radio: the standard RF ISL (flight-proven per the paper's
/// survey citation). Higher bandwidth than UHF at a higher power cost.
TerminalSpec sBandIsl();

/// Optical ISL terminal modeled on the ConLCT80-class unit the paper cites:
/// ~$500k, 15 kg, 0.0234 m^3, multi-Gbps.
TerminalSpec laserIsl();

/// Ku-band ground-link radio (satellite side) per current broadband practice.
TerminalSpec kuGround();

/// Ku-band ground-station antenna (ground side; large dish => high gain).
TerminalSpec kuGroundStation();

/// Ku-band user terminal (phased-array pizza box).
TerminalSpec kuUserTerminal();

}  // namespace terminals

/// Effective antenna/telescope gain of a laser terminal from its beam
/// divergence: G ~ (4/divergence)^2 expressed in dB.
double laserGainDb(double beamDivergenceRad);

}  // namespace openspace
