// Satellite electrical power budget.
//
// §2.2 of the paper: "given the power cost of executing rotations for ISLs
// and establishing those links, satellites may have power consumption
// constraints that limit the number of ISLs they can establish and the size
// of data transfers they can facilitate". PowerBudget is the admission
// gate the ISL manager consults before accepting a new link or a slew.
#pragma once

#include <string>
#include <vector>

namespace openspace {

/// Tracks generation, storage and committed loads on a spacecraft bus.
/// All power in watts, energy in watt-hours.
class PowerBudget {
 public:
  /// `generationW`: orbit-average solar generation. `batteryWh`: usable
  /// storage. `busLoadW`: always-on platform load (ADCS, OBC, thermal).
  /// Throws InvalidArgumentError if generation <= busLoad or anything
  /// negative.
  PowerBudget(double generationW, double batteryWh, double busLoadW);

  /// Power left for new payload loads right now.
  double availableW() const noexcept;

  /// True if a new continuous load of `loadW` fits the budget.
  bool canCommit(double loadW) const noexcept;

  /// Reserve a continuous load (e.g. an active ISL terminal). Returns a
  /// commitment id. Throws CapacityError if it does not fit,
  /// InvalidArgumentError if loadW <= 0.
  int commit(double loadW, std::string label);

  /// Release a previous commitment. Throws NotFoundError for unknown ids.
  void release(int commitmentId);

  /// One-shot energy draw (e.g. a slew maneuver): checks the battery and
  /// deducts. Throws CapacityError when the battery cannot supply it.
  void drawEnergy(double energyWh);

  /// Recharge from generation surplus over `durationS` seconds (capped at
  /// battery capacity).
  void recharge(double durationS);

  double committedW() const noexcept { return committedW_; }
  double generationW() const noexcept { return generationW_; }
  double batteryChargeWh() const noexcept { return batteryChargeWh_; }
  double batteryCapacityWh() const noexcept { return batteryCapacityWh_; }
  std::size_t activeCommitments() const noexcept { return labels_.size(); }

 private:
  double generationW_;
  double batteryCapacityWh_;
  double batteryChargeWh_;
  double busLoadW_;
  double committedW_ = 0.0;
  std::vector<std::pair<int, double>> loads_;  // (id, watts)
  std::vector<std::pair<int, std::string>> labels_;
  int nextId_ = 1;
};

}  // namespace openspace
