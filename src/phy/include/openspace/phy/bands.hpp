// Spectrum band plan for OpenSpace links.
//
// The paper (§2.1) specifies: RF ISLs reuse the flight-proven UHF- and
// S-band spectra; optical (laser) ISLs are an optional upgrade; ground
// links follow current practice (Ku-band licensed for satellite broadband
// in the US), with the exact uplink/downlink frequencies region-dependent.
#pragma once

#include <string_view>

namespace openspace {

/// Frequency bands a standards-compliant OpenSpace radio may operate in.
enum class Band {
  Uhf,      ///< ~400 MHz. Minimal ISL band: robust, low rate, low power.
  S,        ///< ~2.2 GHz. Standard RF ISL band.
  Ku,       ///< ~12 GHz (down) / 14 GHz (up). Ground segment.
  Ka,       ///< ~20/30 GHz. High-rate ground segment option.
  Optical,  ///< ~193 THz (1550 nm laser). Optional high-rate ISL.
};

/// Static properties of a band as used by the link-budget model.
struct BandInfo {
  Band band;
  std::string_view name;
  double carrierHz;            ///< Representative carrier frequency.
  double channelBandwidthHz;   ///< Standardized channel width in OpenSpace.
  bool usableForIsl;           ///< Allowed on inter-satellite links.
  bool usableForGround;        ///< Allowed on satellite<->ground links.
  /// Clear-sky atmospheric zenith attenuation (dB) for ground links; 0 for
  /// space-only bands. Rain adds on top (see rainAttenuationDb).
  double zenithAttenuationDb;
};

/// Band metadata lookup (total function over the enum).
const BandInfo& bandInfo(Band b) noexcept;

/// Short human-readable name ("UHF", "S", "Ku", "Ka", "optical").
std::string_view bandName(Band b) noexcept;

/// Atmospheric attenuation (dB) along a slant path at `elevationRad` for
/// band `b`, with a rain rate of `rainMmPerHour` (simplified ITU-style
/// power-law in frequency, cosecant slant scaling; zero for Optical ISLs
/// in vacuum and near-zero below ~5 GHz). Throws InvalidArgumentError for
/// elevation <= 0 (no tropospheric path exists at or below the horizon).
double atmosphericLossDb(Band b, double elevationRad, double rainMmPerHour = 0.0);

}  // namespace openspace
