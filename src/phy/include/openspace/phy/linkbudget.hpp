// Link budgets: free-space path loss, noise, SNR and achievable capacity.
#pragma once

#include <vector>

#include <openspace/phy/bands.hpp>
#include <openspace/phy/terminal.hpp>

namespace openspace {

/// Free-space path loss in dB at distance `distanceM` and frequency
/// `frequencyHz`. Throws InvalidArgumentError for non-positive inputs.
double freeSpacePathLossDb(double distanceM, double frequencyHz);

/// Thermal noise power (watts) in bandwidth `bandwidthHz` at system noise
/// temperature `noiseTempK`.
double thermalNoiseW(double bandwidthHz, double noiseTempK);

/// Inputs to a point-to-point link budget.
struct LinkBudgetInput {
  Band band = Band::S;
  double distanceM = 0.0;
  double txPowerW = 0.0;
  double txAntennaGainDb = 0.0;
  double rxAntennaGainDb = 0.0;
  double systemNoiseTempK = 290.0;
  double bandwidthHz = 0.0;        ///< 0 => use the band's standard channel.
  double extraLossesDb = 0.0;      ///< Pointing, polarization, implementation.
  double atmosphericLossDb = 0.0;  ///< From atmosphericLossDb() for ground links.
};

/// Computed link budget.
struct LinkBudgetResult {
  double pathLossDb = 0.0;
  double receivedPowerDbw = 0.0;
  double noisePowerDbw = 0.0;
  double snrDb = 0.0;
  double shannonCapacityBps = 0.0;  ///< B * log2(1 + SNR)
};

/// Evaluate the budget. Throws InvalidArgumentError on non-physical inputs
/// (distance/power/bandwidth <= 0).
LinkBudgetResult computeLinkBudget(const LinkBudgetInput& in);

/// One entry of the standardized MODCOD (modulation & coding) table.
/// OpenSpace mandates a common MODCOD ladder (DVB-S2-like) so heterogeneous
/// radios interoperate at whatever SNR the geometry allows.
struct Modcod {
  std::string_view name;
  double requiredSnrDb;        ///< Minimum Es/N0 to close the link.
  double spectralEfficiency;   ///< Information bits per symbol (~per Hz).
};

/// The standardized ladder, ordered by ascending required SNR.
const std::vector<Modcod>& modcodLadder();

/// Highest-rate MODCOD whose SNR requirement is met, or nullptr if even the
/// most robust entry cannot close the link.
const Modcod* selectModcod(double snrDb);

/// Achievable data rate (bps) at `snrDb` over `bandwidthHz` using the
/// standardized ladder (0 if the link cannot close).
double modcodRateBps(double snrDb, double bandwidthHz);

/// Precompiled point-to-point capacity evaluator for one fixed terminal
/// pair: everything that does not depend on the per-link geometry — tx
/// power in dBW, thermal noise floor, per-MODCOD rates — is evaluated once
/// at construction, so rateBps() costs a single log10 (the path loss) plus
/// a ladder scan instead of the full computeLinkBudget()/modcodRateBps()
/// round trip with its unused Shannon-capacity pow/log2.
///
/// Bit-identity contract: rateBps(d, atm) returns the exact double
/// modcodRateBps(computeLinkBudget(...).snrDb, bandwidth) would — cached
/// terms are the same function results the full path recomputes per call,
/// and the remaining arithmetic keeps its expression order. The topology
/// builder's hot capacity helpers sit on this; property tests pin the
/// equality across the distance range.
class CapacityKernel {
 public:
  /// Compile the pair. Throws InvalidArgumentError for non-positive tx
  /// power (the computeLinkBudget precondition, checked eagerly).
  CapacityKernel(const TerminalSpec& tx, const TerminalSpec& rx,
                 double extraLossesDb);

  /// Achievable rate at `distanceM` under `atmosphericLossDb` of extra
  /// path loss. Throws InvalidArgumentError for a non-positive distance
  /// (the freeSpacePathLossDb precondition).
  double rateBps(double distanceM, double atmosphericLossDb = 0.0) const;

 private:
  struct Tier {
    double requiredSnrDb;
    double rateBps;
  };
  double txPowerDbw_ = 0.0;
  double txGainDb_ = 0.0;
  double rxGainDb_ = 0.0;
  double noiseDbw_ = 0.0;
  double extraLossesDb_ = 0.0;
  double carrierHz_ = 0.0;
  std::vector<Tier> tiers_;  ///< Ascending required SNR, rates precomputed.
};

}  // namespace openspace
