// Link budgets: free-space path loss, noise, SNR and achievable capacity.
#pragma once

#include <vector>

#include <openspace/phy/bands.hpp>

namespace openspace {

/// Free-space path loss in dB at distance `distanceM` and frequency
/// `frequencyHz`. Throws InvalidArgumentError for non-positive inputs.
double freeSpacePathLossDb(double distanceM, double frequencyHz);

/// Thermal noise power (watts) in bandwidth `bandwidthHz` at system noise
/// temperature `noiseTempK`.
double thermalNoiseW(double bandwidthHz, double noiseTempK);

/// Inputs to a point-to-point link budget.
struct LinkBudgetInput {
  Band band = Band::S;
  double distanceM = 0.0;
  double txPowerW = 0.0;
  double txAntennaGainDb = 0.0;
  double rxAntennaGainDb = 0.0;
  double systemNoiseTempK = 290.0;
  double bandwidthHz = 0.0;        ///< 0 => use the band's standard channel.
  double extraLossesDb = 0.0;      ///< Pointing, polarization, implementation.
  double atmosphericLossDb = 0.0;  ///< From atmosphericLossDb() for ground links.
};

/// Computed link budget.
struct LinkBudgetResult {
  double pathLossDb = 0.0;
  double receivedPowerDbw = 0.0;
  double noisePowerDbw = 0.0;
  double snrDb = 0.0;
  double shannonCapacityBps = 0.0;  ///< B * log2(1 + SNR)
};

/// Evaluate the budget. Throws InvalidArgumentError on non-physical inputs
/// (distance/power/bandwidth <= 0).
LinkBudgetResult computeLinkBudget(const LinkBudgetInput& in);

/// One entry of the standardized MODCOD (modulation & coding) table.
/// OpenSpace mandates a common MODCOD ladder (DVB-S2-like) so heterogeneous
/// radios interoperate at whatever SNR the geometry allows.
struct Modcod {
  std::string_view name;
  double requiredSnrDb;        ///< Minimum Es/N0 to close the link.
  double spectralEfficiency;   ///< Information bits per symbol (~per Hz).
};

/// The standardized ladder, ordered by ascending required SNR.
const std::vector<Modcod>& modcodLadder();

/// Highest-rate MODCOD whose SNR requirement is met, or nullptr if even the
/// most robust entry cannot close the link.
const Modcod* selectModcod(double snrDb);

/// Achievable data rate (bps) at `snrDb` over `bandwidthHz` using the
/// standardized ladder (0 if the link cannot close).
double modcodRateBps(double snrDb, double bandwidthHz);

}  // namespace openspace
