// units-file: generic scratch primitives; scalar meanings are caller-defined.
//
// Reusable zero-allocation search scratch: generation-stamped arrays and a
// d-ary heap. These are the building blocks of every hot graph-search loop
// in the library (the RouteEngine's Dijkstra, Yen spur searches, the
// constellation snapshot's ISL path queries): a query "clears" its state in
// O(1) by bumping a generation counter instead of refilling arrays, and the
// heap keeps its capacity across queries, so a warmed-up search allocates
// nothing at all.
//
// Determinism: DaryHeap orders entries by (key, index) lexicographically,
// so pop order — and therefore parent choice among equal-cost relaxations —
// is identical regardless of insertion interleaving. Search kernels built
// on these primitives produce bit-identical results run-to-run and
// thread-count-to-thread-count.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

#include <openspace/core/assert.hpp>

namespace openspace {

/// A fixed-capacity array whose entries read as "untouched" until written
/// in the current generation. reset() is O(1) (amortized): it bumps the
/// generation stamp instead of refilling values.
template <class T>
class StampedArray {
 public:
  /// Start a new generation over `n` slots. Grows storage on demand; never
  /// shrinks, so steady-state reuse performs no allocation.
  void reset(std::size_t n) {
    if (n > stamps_.size()) {
      stamps_.resize(n, 0);
      values_.resize(n);
    }
    if (++generation_ == 0) {  // wrapped: all stamps are stale by definition
      std::fill(stamps_.begin(), stamps_.end(), 0);
      generation_ = 1;
    }
  }

  bool touched(std::size_t i) const {
    OPENSPACE_ASSERT(i < stamps_.size(), "StampedArray index in range");
    return stamps_[i] == generation_;
  }

  /// Value at i, or `fallback` when the slot is untouched this generation.
  const T& getOr(std::size_t i, const T& fallback) const {
    return touched(i) ? values_[i] : fallback;
  }

  void set(std::size_t i, const T& v) {
    OPENSPACE_ASSERT(i < stamps_.size(), "StampedArray index in range");
    values_[i] = v;
    stamps_[i] = generation_;
  }

 private:
  std::vector<T> values_;
  std::vector<std::uint32_t> stamps_;
  std::uint32_t generation_ = 0;
};

/// Binary min-heap of (key, index) pairs with lazy deletion (no
/// decrease-key; stale entries are skipped by the caller via a distance
/// check). On the small frontiers routing works with (tens of entries),
/// arity 2 measured faster than 4: one comparison per level beats the
/// shorter-but-wider sift of higher arities. Ties break toward the smaller
/// index, deterministically.
///
/// Internally keys are stored as order-preserving integer bit patterns (the
/// standard sign-flip transform of the IEEE-754 layout), so the hot sift
/// compares are integer ops instead of FP-compare branch pairs. NaN keys
/// are not supported (asserted); -0.0 sorts strictly before +0.0, which is
/// indistinguishable to callers keying on costs or timestamps.
class DaryHeap {
 public:
  struct Entry {
    double key;
    std::uint32_t index;
  };

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }
  /// Drop all entries but keep capacity for reuse.
  void clear() noexcept { heap_.clear(); }

  void push(double key, std::uint32_t index) {
    OPENSPACE_ASSERT(key == key, "DaryHeap keys must not be NaN");
    heap_.push_back({orderedBits(key), index});
    std::size_t i = heap_.size() - 1;
    while (i > 0) {
      const std::size_t parent = (i - 1) / kArity;
      if (!less(heap_[i], heap_[parent])) break;
      std::swap(heap_[i], heap_[parent]);
      i = parent;
    }
  }

  /// Remove and return the minimum entry. Heap must be non-empty.
  Entry pop() {
    OPENSPACE_ASSERT(!heap_.empty(), "DaryHeap::pop on empty heap");
    const Packed top = heap_.front();
    heap_.front() = heap_.back();
    heap_.pop_back();
    std::size_t i = 0;
    const std::size_t n = heap_.size();
    for (;;) {
      const std::size_t firstChild = i * kArity + 1;
      if (firstChild >= n) break;
      std::size_t best = firstChild;
      const std::size_t lastChild = std::min(firstChild + kArity, n);
      for (std::size_t c = firstChild + 1; c < lastChild; ++c) {
        if (less(heap_[c], heap_[best])) best = c;
      }
      if (!less(heap_[best], heap_[i])) break;
      std::swap(heap_[i], heap_[best]);
      i = best;
    }
    return {keyOf(top), top.index};
  }

 private:
  static constexpr std::size_t kArity = 2;
  static constexpr std::uint64_t kSignBit = 1ull << 63;

  struct Packed {
    std::uint64_t key;  ///< Order-preserving transform of the double key.
    std::uint32_t index;
  };

  /// Monotone double -> uint64 map: negative values flip entirely, others
  /// flip the sign bit, so unsigned integer order == IEEE numeric order.
  static std::uint64_t orderedBits(double d) noexcept {
    std::uint64_t b = 0;
    static_assert(sizeof b == sizeof d);
    std::memcpy(&b, &d, sizeof b);
    return (b & kSignBit) != 0 ? ~b : (b | kSignBit);
  }

  static double keyOf(const Packed& p) noexcept {
    const std::uint64_t b =
        (p.key & kSignBit) != 0 ? (p.key ^ kSignBit) : ~p.key;
    double d = 0.0;
    std::memcpy(&d, &b, sizeof d);
    return d;
  }

  static bool less(const Packed& a, const Packed& b) noexcept {
    return a.key < b.key || (a.key == b.key && a.index < b.index);
  }

  std::vector<Packed> heap_;
};

}  // namespace openspace
