// Shared 4-lane operation traits for the vectorized kernels.
// units-file: lane abstraction — every double here is a unitless lane
// value whose dimension belongs to the templated kernel, not the trait.
//
// Two instantiation backends with *identical* lane semantics:
//  * ScalarOps — portable 4-wide emulation. std::fma and the arithmetic
//    operators are correctly rounded per IEEE 754 (as vfmadd / vaddpd /
//    ... are), std::nearbyint in the default rounding mode is
//    round-to-nearest-even (as vroundpd with _MM_FROUND_TO_NEAREST_INT
//    is), and masks are all-ones/all-zero bit patterns selected through
//    the sign bit (as vblendvpd does).
//  * Avx2Ops — the AVX2+FMA intrinsics themselves. Only visible to
//    translation units compiled with -mavx2 -mfma (the __AVX2__/__FMA__
//    guard below); nothing outside those TUs may name it.
//
// Every kernel templated over these traits (orbit/propagation_simd_lanes
// .hpp, geo/spherical_index_simd_lanes.hpp) must use ONLY operations that
// are correctly rounded or exact, in a fixed order, so any two Ops
// instantiations produce bit-identical results — the property
// tests/test_simd.cpp pins. TUs instantiating a kernel from this header
// must be compiled with -ffp-contract=off: the bit-identity contract
// forbids the compiler from fusing the templates' explicit mul/add
// sequences into fmas on one side only.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>

namespace openspace::simd {

inline constexpr std::uint64_t kLaneAllOnes = ~std::uint64_t{0};
// Magic constant: adding 1.5 * 2^52 puts an integral |n| < 2^51 in the
// low mantissa bits (two's complement for negatives).
inline constexpr double kIntMagic = 6755399441055744.0;

struct ScalarOps {
  struct V {
    double l[4];
  };

  static V broadcast(double v) noexcept { return {{v, v, v, v}}; }
  static V set(double e0, double e1, double e2, double e3) noexcept {
    return {{e0, e1, e2, e3}};
  }
  static V load(const double* p) noexcept { return {{p[0], p[1], p[2], p[3]}}; }
  static void store(double* p, V v) noexcept {
    p[0] = v.l[0];
    p[1] = v.l[1];
    p[2] = v.l[2];
    p[3] = v.l[3];
  }
  static V add(V a, V b) noexcept {
    return {{a.l[0] + b.l[0], a.l[1] + b.l[1], a.l[2] + b.l[2],
             a.l[3] + b.l[3]}};
  }
  static V sub(V a, V b) noexcept {
    return {{a.l[0] - b.l[0], a.l[1] - b.l[1], a.l[2] - b.l[2],
             a.l[3] - b.l[3]}};
  }
  static V mul(V a, V b) noexcept {
    return {{a.l[0] * b.l[0], a.l[1] * b.l[1], a.l[2] * b.l[2],
             a.l[3] * b.l[3]}};
  }
  static V div(V a, V b) noexcept {
    return {{a.l[0] / b.l[0], a.l[1] / b.l[1], a.l[2] / b.l[2],
             a.l[3] / b.l[3]}};
  }
  static V fmadd(V a, V b, V c) noexcept {
    V r;
    for (int j = 0; j < 4; ++j) r.l[j] = std::fma(a.l[j], b.l[j], c.l[j]);
    return r;
  }
  static V roundEven(V a) noexcept {
    V r;
    for (int j = 0; j < 4; ++j) r.l[j] = std::nearbyint(a.l[j]);
    return r;
  }
  /// Truncate toward zero (vroundpd with _MM_FROUND_TO_ZERO).
  static V truncToZero(V a) noexcept {
    V r;
    for (int j = 0; j < 4; ++j) r.l[j] = std::trunc(a.l[j]);
    return r;
  }
  static V abs(V a) noexcept {
    V r;
    for (int j = 0; j < 4; ++j) r.l[j] = std::fabs(a.l[j]);
    return r;
  }
  /// vminpd semantics exactly: a < b ? a : b per lane — returns b when
  /// the lanes compare equal or either is NaN.
  static V min(V a, V b) noexcept {
    V r;
    for (int j = 0; j < 4; ++j) r.l[j] = a.l[j] < b.l[j] ? a.l[j] : b.l[j];
    return r;
  }
  static V cmpLt(V a, V b) noexcept {
    V r;
    for (int j = 0; j < 4; ++j) {
      r.l[j] = std::bit_cast<double>(a.l[j] < b.l[j] ? kLaneAllOnes
                                                     : std::uint64_t{0});
    }
    return r;
  }
  static V cmpEq(V a, V b) noexcept {
    V r;
    for (int j = 0; j < 4; ++j) {
      r.l[j] = std::bit_cast<double>(a.l[j] == b.l[j] ? kLaneAllOnes
                                                      : std::uint64_t{0});
    }
    return r;
  }
  static V andV(V a, V b) noexcept {
    V r;
    for (int j = 0; j < 4; ++j) {
      r.l[j] = std::bit_cast<double>(std::bit_cast<std::uint64_t>(a.l[j]) &
                                     std::bit_cast<std::uint64_t>(b.l[j]));
    }
    return r;
  }
  static V orV(V a, V b) noexcept {
    V r;
    for (int j = 0; j < 4; ++j) {
      r.l[j] = std::bit_cast<double>(std::bit_cast<std::uint64_t>(a.l[j]) |
                                     std::bit_cast<std::uint64_t>(b.l[j]));
    }
    return r;
  }
  static V xorV(V a, V b) noexcept {
    V r;
    for (int j = 0; j < 4; ++j) {
      r.l[j] = std::bit_cast<double>(std::bit_cast<std::uint64_t>(a.l[j]) ^
                                     std::bit_cast<std::uint64_t>(b.l[j]));
    }
    return r;
  }
  /// Select a where the mask's sign bit is set, else b (vblendvpd).
  static V blend(V mask, V a, V b) noexcept {
    V r;
    for (int j = 0; j < 4; ++j) {
      r.l[j] = (std::bit_cast<std::uint64_t>(mask.l[j]) >> 63) != 0 ? a.l[j]
                                                                    : b.l[j];
    }
    return r;
  }
  static int movemask(V mask) noexcept {
    int m = 0;
    for (int j = 0; j < 4; ++j) {
      m |= static_cast<int>(std::bit_cast<std::uint64_t>(mask.l[j]) >> 63)
           << j;
    }
    return m;
  }
  /// Lane masks for (n mod 4) == 1, 2, 3 where n holds integral values
  /// with |n| < 2^51 (the kIntMagic low-bits trick, as the AVX2 side).
  static void quadrantMasks(V n, V& m1, V& m2, V& m3) noexcept {
    for (int j = 0; j < 4; ++j) {
      const std::uint64_t q =
          std::bit_cast<std::uint64_t>(n.l[j] + kIntMagic) & 3u;
      m1.l[j] = std::bit_cast<double>(q == 1 ? kLaneAllOnes : std::uint64_t{0});
      m2.l[j] = std::bit_cast<double>(q == 2 ? kLaneAllOnes : std::uint64_t{0});
      m3.l[j] = std::bit_cast<double>(q == 3 ? kLaneAllOnes : std::uint64_t{0});
    }
  }
  /// Truncate lanes holding integral values in [0, 2^31) to 32-bit
  /// indices and store them (vcvttpd2dq + 128-bit store).
  static void storeIndicesU32(std::uint32_t* p, V v) noexcept {
    for (int j = 0; j < 4; ++j) {
      p[j] = static_cast<std::uint32_t>(static_cast<std::int64_t>(v.l[j]));
    }
  }
};

}  // namespace openspace::simd

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

namespace openspace::simd {

struct Avx2Ops {
  using V = __m256d;

  static V broadcast(double v) noexcept { return _mm256_set1_pd(v); }
  static V set(double e0, double e1, double e2, double e3) noexcept {
    return _mm256_set_pd(e3, e2, e1, e0);
  }
  static V load(const double* p) noexcept { return _mm256_loadu_pd(p); }
  static void store(double* p, V v) noexcept { _mm256_storeu_pd(p, v); }
  static V add(V a, V b) noexcept { return _mm256_add_pd(a, b); }
  static V sub(V a, V b) noexcept { return _mm256_sub_pd(a, b); }
  static V mul(V a, V b) noexcept { return _mm256_mul_pd(a, b); }
  static V div(V a, V b) noexcept { return _mm256_div_pd(a, b); }
  static V fmadd(V a, V b, V c) noexcept { return _mm256_fmadd_pd(a, b, c); }
  static V roundEven(V a) noexcept {
    return _mm256_round_pd(a, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  }
  static V truncToZero(V a) noexcept {
    return _mm256_round_pd(a, _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC);
  }
  static V abs(V a) noexcept {
    return _mm256_andnot_pd(_mm256_set1_pd(-0.0), a);
  }
  static V min(V a, V b) noexcept { return _mm256_min_pd(a, b); }
  static V cmpLt(V a, V b) noexcept { return _mm256_cmp_pd(a, b, _CMP_LT_OQ); }
  static V cmpEq(V a, V b) noexcept { return _mm256_cmp_pd(a, b, _CMP_EQ_OQ); }
  static V andV(V a, V b) noexcept { return _mm256_and_pd(a, b); }
  static V orV(V a, V b) noexcept { return _mm256_or_pd(a, b); }
  static V xorV(V a, V b) noexcept { return _mm256_xor_pd(a, b); }
  static V blend(V mask, V a, V b) noexcept {
    return _mm256_blendv_pd(b, a, mask);
  }
  static int movemask(V mask) noexcept { return _mm256_movemask_pd(mask); }
  static void quadrantMasks(V n, V& m1, V& m2, V& m3) noexcept {
    const __m256i bits =
        _mm256_castpd_si256(_mm256_add_pd(n, _mm256_set1_pd(kIntMagic)));
    const __m256i low = _mm256_and_si256(bits, _mm256_set1_epi64x(3));
    m1 = _mm256_castsi256_pd(_mm256_cmpeq_epi64(low, _mm256_set1_epi64x(1)));
    m2 = _mm256_castsi256_pd(_mm256_cmpeq_epi64(low, _mm256_set1_epi64x(2)));
    m3 = _mm256_castsi256_pd(_mm256_cmpeq_epi64(low, _mm256_set1_epi64x(3)));
  }
  static void storeIndicesU32(std::uint32_t* p, V v) noexcept {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), _mm256_cvttpd_epi32(v));
  }
};

}  // namespace openspace::simd

#endif  // __AVX2__ && __FMA__
