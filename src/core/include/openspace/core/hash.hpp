// Canonical FNV-1a 64-bit mixing helpers.
//
// Every determinism gate in the library (serial==parallel bench checksums,
// simulator==legacy record streams, delta==fresh graph identity) folds its
// witness through these. They hash raw bit patterns — never rounded or
// formatted values — so two artifacts checksum equal iff they are bitwise
// identical in the same order.
#pragma once

#include <bit>
#include <cstdint>

namespace openspace {

inline constexpr std::uint64_t kFnvOffsetBasis = 1469598103934665603ull;

inline constexpr std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFFu;
    h *= 1099511628211ull;
  }
  return h;
}

/// Raw bit pattern of a double (units: none — bits, not a quantity).
inline std::uint64_t bitsOf(double v) noexcept {  // units: raw bits fold
  return std::bit_cast<std::uint64_t>(v);
}

}  // namespace openspace
