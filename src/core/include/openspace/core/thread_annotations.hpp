// Compiler-enforced thread-safety annotations (Clang Thread Safety
// Analysis) and the annotated locking primitives the library uses in
// place of raw std::mutex.
//
// Why a wrapper exists at all: libstdc++'s std::mutex carries no
// `capability` attribute, so -Wthread-safety cannot reason about it.
// openspace::Mutex is a zero-overhead annotated shell around std::mutex;
// every mutex-holding component (the ThreadPool, SnapshotCache, the
// ConstellationSnapshot ISL cache, the FleetEphemeris and FootprintIndex2
// compile LRUs) declares its guarded state with OPENSPACE_GUARDED_BY and
// takes the lock through MutexLock, and the clang build (CI lint job and
// the regular clang lane) compiles with -Wthread-safety as an error.
// Under gcc — which implements none of these attributes — every macro
// expands to nothing and Mutex/MutexLock behave exactly like
// std::mutex/std::lock_guard.
//
// Annotation conventions (DESIGN.md §12):
//  * data members touched under a lock get OPENSPACE_GUARDED_BY(mu);
//  * private helpers called with the lock held get OPENSPACE_REQUIRES(mu);
//  * public entry points that take the lock themselves get
//    OPENSPACE_EXCLUDES(mu) when re-entry would self-deadlock;
//  * condition waits go through ConditionVariable::wait(mu) inside an
//    explicit `while (!predicate)` loop, so the guarded reads in the
//    predicate are visible to the analysis under the held lock.
#pragma once

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && !defined(SWIG)
#define OPENSPACE_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define OPENSPACE_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// Marks a type as a lockable capability; the string names it in
/// diagnostics ("mutex 'mu_' is still held at the end of function ...").
#define OPENSPACE_CAPABILITY(x) OPENSPACE_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define OPENSPACE_SCOPED_CAPABILITY OPENSPACE_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding the given capability.
#define OPENSPACE_GUARDED_BY(x) OPENSPACE_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the given capability.
#define OPENSPACE_PT_GUARDED_BY(x) OPENSPACE_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function that must be called with the capability already held.
#define OPENSPACE_REQUIRES(...) \
  OPENSPACE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function that acquires the capability and returns holding it.
#define OPENSPACE_ACQUIRE(...) \
  OPENSPACE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function that releases the capability.
#define OPENSPACE_RELEASE(...) \
  OPENSPACE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function that acquires the capability iff it returns the given value.
#define OPENSPACE_TRY_ACQUIRE(...) \
  OPENSPACE_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function that must NOT be called while holding the capability
/// (it takes the lock itself; re-entry would self-deadlock).
#define OPENSPACE_EXCLUDES(...) \
  OPENSPACE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returning a reference to the named capability.
#define OPENSPACE_RETURN_CAPABILITY(x) \
  OPENSPACE_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: suppress the analysis for one function. Every use must
/// carry a comment explaining why the pattern is safe but inexpressible.
#define OPENSPACE_NO_THREAD_SAFETY_ANALYSIS \
  OPENSPACE_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace openspace {

class ConditionVariable;

/// Annotated drop-in for std::mutex. Same size, same semantics, but the
/// clang analysis can track acquire/release through it.
class OPENSPACE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() OPENSPACE_ACQUIRE() { m_.lock(); }
  void unlock() OPENSPACE_RELEASE() { m_.unlock(); }
  bool try_lock() OPENSPACE_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  friend class ConditionVariable;
  std::mutex m_;
};

/// Annotated scoped lock (the std::lock_guard shape; no unlock/relock,
/// no deferral — the one pattern the whole library uses).
class OPENSPACE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) OPENSPACE_ACQUIRE(mu) : mu_(&mu) {
    mu_->lock();
  }
  ~MutexLock() OPENSPACE_RELEASE() { mu_->unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// Condition variable paired with openspace::Mutex. wait() takes the
/// already-held Mutex so callers write the canonical analyzable loop:
///
///   MutexLock lock(mu_);
///   while (!condition) cv_.wait(mu_);   // guarded reads visible to TSA
///
/// rather than hiding the guarded predicate inside a lambda the analysis
/// cannot attribute to the lock.
class ConditionVariable {
 public:
  ConditionVariable() = default;
  ConditionVariable(const ConditionVariable&) = delete;
  ConditionVariable& operator=(const ConditionVariable&) = delete;

  /// Atomically release `mu`, sleep, and re-acquire before returning.
  /// Spurious wakeups happen; always wait in a predicate loop.
  void wait(Mutex& mu) OPENSPACE_REQUIRES(mu) {
    // Adopt the caller's hold for the duration of the wait, then release
    // the unique_lock's ownership again — the caller's MutexLock remains
    // the one true owner and the analysis never sees a lock-state change.
    std::unique_lock<std::mutex> inner(mu.m_, std::adopt_lock);
    cv_.wait(inner);
    inner.release();
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace openspace
