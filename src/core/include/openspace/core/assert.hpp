// OPENSPACE_ASSERT — the library's contract-checking macro.
//
// Preconditions on hot paths (snapshot propagation, routing inner loops)
// are too expensive to validate with exceptions in Release builds but too
// valuable to drop entirely. OPENSPACE_ASSERT checks in Debug and
// RelWithDebInfo (any build where NDEBUG is unset) and compiles to nothing
// in Release, while keeping the condition expression syntactically alive
// so it cannot rot.
//
// Use OPENSPACE_ASSERT for internal invariants and programmer errors.
// Keep throwing typed errors (InvalidArgumentError, NotFoundError) for
// conditions a caller can plausibly trigger with bad input.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace openspace::detail {

[[noreturn]] inline void assertFail(const char* expr, const char* file,
                                    int line, const char* msg) noexcept {
  std::fprintf(stderr, "%s:%d: OPENSPACE_ASSERT(%s) failed%s%s\n", file, line,
               expr, (msg != nullptr && msg[0] != '\0') ? ": " : "",
               (msg != nullptr) ? msg : "");
  std::abort();
}

}  // namespace openspace::detail

#ifdef NDEBUG
// Release: compiled out, but the expression stays parsed so it cannot rot.
#define OPENSPACE_ASSERT(expr, ...) \
  static_cast<void>(sizeof(static_cast<bool>(expr) ? 1 : 0))
#else
#define OPENSPACE_ASSERT(expr, ...)                                      \
  (static_cast<bool>(expr)                                               \
       ? static_cast<void>(0)                                            \
       : ::openspace::detail::assertFail(#expr, __FILE__, __LINE__,      \
                                         "" __VA_ARGS__))
#endif
