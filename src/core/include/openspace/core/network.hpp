// OpenSpaceNetwork — the library facade.
//
// One object through which a downstream user assembles and queries an
// OpenSpace deployment: register providers, launch constellations, equip
// terminals, place ground assets, snapshot the topology, route, and
// estimate coverage. Internally delegates to the ephemeris, topology,
// routing and coverage modules; use those directly for finer control.
#pragma once

#include <map>
#include <memory>
#include <string>

#include <openspace/coverage/coverage.hpp>
#include <openspace/orbit/walker.hpp>
#include <openspace/routing/dijkstra.hpp>
#include <openspace/topology/builder.hpp>

namespace openspace {

class OpenSpaceNetwork {
 public:
  OpenSpaceNetwork() = default;

  /// Register a provider by name; returns its id. Names must be unique and
  /// non-empty (InvalidArgumentError otherwise).
  ProviderId registerProvider(const std::string& name);

  const std::string& providerName(ProviderId id) const;
  std::vector<ProviderId> providers() const;

  /// Launch a Walker Star constellation for `owner`. Returns satellite ids.
  std::vector<SatelliteId> launchWalkerStar(ProviderId owner,
                                            const WalkerConfig& cfg);

  /// Launch `n` satellites on random orbits for `owner` (uncoordinated
  /// small-provider fleets).
  std::vector<SatelliteId> launchRandom(ProviderId owner, int n,
                                        double altitudeM, std::uint64_t seed);

  /// Launch a single satellite on explicit elements.
  SatelliteId launchSatellite(ProviderId owner, const OrbitalElements& el);

  /// Give a satellite laser ISL capability (RF remains mandatory).
  void equipLaserTerminal(SatelliteId id);

  NodeId addGroundStation(ProviderId owner, const std::string& name,
                          const Geodetic& location);
  NodeId addUser(ProviderId owner, const std::string& name,
                 const Geodetic& location);

  /// Topology snapshot at time t.
  NetworkGraph topologyAt(double tSeconds, const SnapshotOptions& opt = {}) const;

  /// Route between two nodes in the time-t snapshot under a QoS class.
  Route route(NodeId src, NodeId dst, double tSeconds,
              QosClass qos = QosClass::Standard,
              const SnapshotOptions& opt = {}) const;

  /// NodeId for a satellite in snapshots.
  NodeId nodeOf(SatelliteId id) const;

  /// Instantaneous Monte-Carlo coverage fraction of the whole fleet.
  double coverageAt(double tSeconds, double minElevationRad, int samples,
                    std::uint64_t seed) const;

  const EphemerisService& ephemeris() const noexcept { return ephemeris_; }
  std::size_t satelliteCount() const noexcept { return ephemeris_.size(); }

 private:
  struct GroundAsset {
    bool isStation;
    GroundSite site;
    NodeId assignedNode{};  ///< Stable across builder rebuilds.
  };

  TopologyBuilder& builder() const;
  void invalidate() noexcept { builder_.reset(); }
  NodeId addGroundAsset(bool isStation, ProviderId owner,
                        const std::string& name, const Geodetic& location);

  EphemerisService ephemeris_;
  std::map<ProviderId, std::string> names_;
  std::map<SatelliteId, LinkCapabilities> capOverrides_;
  std::vector<GroundAsset> groundAssets_;
  ProviderId::rep_type nextProviderValue_ = 1;
  mutable std::unique_ptr<TopologyBuilder> builder_;
  mutable std::map<std::size_t, NodeId> assetNodes_;  ///< asset idx -> node.
};

}  // namespace openspace
