// Process-wide SIMD dispatch policy.
//
// The vectorized hot kernels (batch propagation, spherical cap index) are
// compiled twice: an AVX2+FMA translation unit and a portable 4-lane
// scalar-fallback translation unit that executes the identical algorithm
// through std::fma lanes (both paths use only correctly-rounded IEEE
// operations in the same order, so they are bit-identical — property-
// tested). This header owns the *policy* half of runtime dispatch: what
// the CPU supports and what the OPENSPACE_SIMD override requests. Each
// kernel family degrades the policy level to what its build actually
// contains (e.g. a non-x86 build has no AVX2 translation unit).
#pragma once

#include <cstdlib>
#include <cstring>

namespace openspace {

/// Vector instruction level of a dispatched kernel.
enum class SimdLevel {
  Scalar4,  ///< Portable 4-lane fallback (std::fma lanes). Always available.
  Avx2,     ///< AVX2 + FMA intrinsics.
};

inline const char* simdLevelName(SimdLevel level) noexcept {
  return level == SimdLevel::Avx2 ? "avx2" : "scalar4";
}

namespace simd_detail {

/// True when the CPU this process runs on reports AVX2 and FMA.
inline bool cpuSupportsAvx2() noexcept {
#if (defined(__x86_64__) || defined(_M_X64)) && defined(__GNUC__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

}  // namespace simd_detail

/// The requested dispatch level: OPENSPACE_SIMD=scalar forces Scalar4,
/// OPENSPACE_SIMD=avx2 requests Avx2 (degraded to Scalar4 when the CPU
/// lacks it), unset/auto picks Avx2 iff the CPU supports it. Cached on
/// first call; set the variable before the first kernel use.
inline SimdLevel activeSimdLevel() noexcept {
  static const SimdLevel level = [] {
    const char* env = std::getenv("OPENSPACE_SIMD");
    if (env != nullptr && std::strcmp(env, "scalar") == 0) {
      return SimdLevel::Scalar4;
    }
    return simd_detail::cpuSupportsAvx2() ? SimdLevel::Avx2
                                          : SimdLevel::Scalar4;
  }();
  return level;
}

}  // namespace openspace
