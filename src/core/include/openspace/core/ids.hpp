// Strong identifier types for every OpenSpace naming domain.
//
// The paper's routing and settlement mechanisms (§2.7, §3) require every
// carrier to compute identical metrics from the shared public topology, so
// a satellite index silently used as a plane index (or a provider id used
// as a node id) corrupts results instead of crashing. Each identifier
// domain therefore gets its own tagged integer type: construction from a
// raw integer is explicit, cross-domain assignment and comparison do not
// compile, and the raw value is only reachable through value(). The types
// are trivially copyable and exactly as cheap as the integers they wrap.
//
// Domains:
//   SatId (= SatelliteId)  satellites, unique network-wide (EphemerisService)
//   PlaneId                orbital planes within a Walker constellation
//   ProviderId             ISPs / operators
//   NodeId                 topology-snapshot graph nodes (satellites + ground)
//   GroundStationId        ground stations registered with a TopologyBuilder
//   LinkId                 links within a topology snapshot
//
// Id value 0 is reserved as "unset" in every domain; allocators hand out
// ids from 1. A default-constructed id is unset (isValid() == false).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>

namespace openspace {

/// A tagged integral identifier. `Tag` is an empty struct naming the
/// domain; ids from different domains are distinct, incompatible types.
template <class Tag, class Rep = std::uint32_t>
class TaggedId {
 public:
  using rep_type = Rep;

  constexpr TaggedId() noexcept = default;
  constexpr explicit TaggedId(Rep value) noexcept : value_(value) {}

  /// The raw integral value. Prefer passing the typed id around; reach for
  /// value() only at serialization / formatting / indexing boundaries.
  [[nodiscard]] constexpr Rep value() const noexcept { return value_; }

  /// False for the reserved "unset" value 0.
  [[nodiscard]] constexpr bool isValid() const noexcept { return value_ != 0; }

  friend constexpr bool operator==(TaggedId, TaggedId) noexcept = default;
  friend constexpr auto operator<=>(TaggedId, TaggedId) noexcept = default;

  friend std::ostream& operator<<(std::ostream& os, TaggedId id) {
    return os << id.value();
  }

 private:
  Rep value_ = 0;
};

namespace detail {
struct SatIdTag {};
struct PlaneIdTag {};
struct ProviderIdTag {};
struct NodeIdTag {};
struct GroundStationIdTag {};
struct LinkIdTag {};
}  // namespace detail

/// Opaque satellite identifier, unique network-wide (EphemerisService).
using SatId = TaggedId<detail::SatIdTag>;
/// Historical spelling of SatId, kept for API continuity.
using SatelliteId = SatId;
/// Orbital-plane index within one Walker constellation (0-based; PlaneId is
/// the one domain where 0 is a real plane, not "unset").
using PlaneId = TaggedId<detail::PlaneIdTag>;
/// Opaque provider (ISP / operator) identifier.
using ProviderId = TaggedId<detail::ProviderIdTag>;
/// Graph-level node identifier (distinct space from SatId: ground assets
/// have NodeIds but no SatId).
using NodeId = TaggedId<detail::NodeIdTag>;
/// Stable handle for a ground station registered with a TopologyBuilder.
using GroundStationId = TaggedId<detail::GroundStationIdTag>;
/// Link identifier within one topology snapshot.
using LinkId = TaggedId<detail::LinkIdTag>;

}  // namespace openspace

template <class Tag, class Rep>
struct std::hash<openspace::TaggedId<Tag, Rep>> {
  std::size_t operator()(openspace::TaggedId<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};
