#include <openspace/core/network.hpp>

#include <openspace/geo/error.hpp>

namespace openspace {

ProviderId OpenSpaceNetwork::registerProvider(const std::string& name) {
  if (name.empty()) {
    throw InvalidArgumentError("registerProvider: name must be non-empty");
  }
  for (const auto& [id, existing] : names_) {
    if (existing == name) {
      throw InvalidArgumentError("registerProvider: duplicate name '" + name + "'");
    }
  }
  const ProviderId id{nextProviderValue_++};
  names_.emplace(id, name);
  return id;
}

const std::string& OpenSpaceNetwork::providerName(ProviderId id) const {
  const auto it = names_.find(id);
  if (it == names_.end()) {
    throw NotFoundError("providerName: unknown provider");
  }
  return it->second;
}

std::vector<ProviderId> OpenSpaceNetwork::providers() const {
  std::vector<ProviderId> out;
  out.reserve(names_.size());
  for (const auto& [id, name] : names_) out.push_back(id);
  return out;
}

namespace {
void requireProvider(const std::map<ProviderId, std::string>& names, ProviderId p) {
  if (!names.contains(p)) {
    throw NotFoundError("OpenSpaceNetwork: unknown provider id " +
                        std::to_string(p.value()));
  }
}
}  // namespace

std::vector<SatelliteId> OpenSpaceNetwork::launchWalkerStar(
    ProviderId owner, const WalkerConfig& cfg) {
  requireProvider(names_, owner);
  if (!groundAssets_.empty()) {
    throw StateError(
        "OpenSpaceNetwork: launch all satellites before adding ground assets "
        "(keeps node ids stable)");
  }
  std::vector<SatelliteId> ids;
  for (const auto& el : makeWalkerStar(cfg)) {
    ids.push_back(ephemeris_.publish(owner, el));
  }
  invalidate();
  return ids;
}

std::vector<SatelliteId> OpenSpaceNetwork::launchRandom(ProviderId owner, int n,
                                                        double altitudeM,
                                                        std::uint64_t seed) {
  requireProvider(names_, owner);
  if (!groundAssets_.empty()) {
    throw StateError(
        "OpenSpaceNetwork: launch all satellites before adding ground assets");
  }
  Rng rng(seed);
  std::vector<SatelliteId> ids;
  for (const auto& el : makeRandomConstellation(n, altitudeM, rng)) {
    ids.push_back(ephemeris_.publish(owner, el));
  }
  invalidate();
  return ids;
}

SatelliteId OpenSpaceNetwork::launchSatellite(ProviderId owner,
                                              const OrbitalElements& el) {
  requireProvider(names_, owner);
  if (!groundAssets_.empty()) {
    throw StateError(
        "OpenSpaceNetwork: launch all satellites before adding ground assets");
  }
  const SatelliteId id = ephemeris_.publish(owner, el);
  invalidate();
  return id;
}

void OpenSpaceNetwork::equipLaserTerminal(SatelliteId id) {
  if (!ephemeris_.contains(id)) {
    throw NotFoundError("equipLaserTerminal: unknown satellite");
  }
  LinkCapabilities caps;
  caps.islBands = {Band::S, Band::Uhf};
  caps.hasLaserTerminal = true;
  caps.maxIslCount = 4;
  capOverrides_[id] = caps;
  if (builder_) builder_->setCapabilities(id, caps);
}

NodeId OpenSpaceNetwork::addGroundAsset(bool isStation, ProviderId owner,
                                        const std::string& name,
                                        const Geodetic& location) {
  requireProvider(names_, owner);
  groundAssets_.push_back({isStation, GroundSite{name, location, owner}, NodeId{}});
  const std::size_t idx = groundAssets_.size() - 1;
  // builder() replays groundAssets_ when it (re)constructs, which already
  // includes the entry just pushed; only add explicitly when the builder
  // pre-existed this call.
  TopologyBuilder& b = builder();
  NodeId node;
  const auto it = assetNodes_.find(idx);
  if (it != assetNodes_.end()) {
    node = it->second;
  } else {
    node = isStation ? b.nodeOf(b.addGroundStation(groundAssets_[idx].site))
                     : b.addUser(groundAssets_[idx].site);
    assetNodes_[idx] = node;
  }
  groundAssets_[idx].assignedNode = node;
  return node;
}

NodeId OpenSpaceNetwork::addGroundStation(ProviderId owner,
                                          const std::string& name,
                                          const Geodetic& location) {
  return addGroundAsset(true, owner, name, location);
}

NodeId OpenSpaceNetwork::addUser(ProviderId owner, const std::string& name,
                                 const Geodetic& location) {
  return addGroundAsset(false, owner, name, location);
}

TopologyBuilder& OpenSpaceNetwork::builder() const {
  if (!builder_) {
    builder_ = std::make_unique<TopologyBuilder>(ephemeris_);
    for (const auto& [sid, caps] : capOverrides_) {
      builder_->setCapabilities(sid, caps);
    }
    assetNodes_.clear();
    for (std::size_t i = 0; i < groundAssets_.size(); ++i) {
      const auto& asset = groundAssets_[i];
      const NodeId node =
          asset.isStation
              ? builder_->nodeOf(builder_->addGroundStation(asset.site))
              : builder_->addUser(asset.site);
      assetNodes_[i] = node;
    }
  }
  return *builder_;
}

NetworkGraph OpenSpaceNetwork::topologyAt(double tSeconds,
                                          const SnapshotOptions& opt) const {
  return builder().snapshot(tSeconds, opt);
}

Route OpenSpaceNetwork::route(NodeId src, NodeId dst, double tSeconds,
                              QosClass qos, const SnapshotOptions& opt) const {
  const NetworkGraph g = topologyAt(tSeconds, opt);
  return shortestPath(g, src, dst, makeCostFunction(CostWeights::forQos(qos)));
}

NodeId OpenSpaceNetwork::nodeOf(SatelliteId id) const { return builder().nodeOf(id); }

double OpenSpaceNetwork::coverageAt(double tSeconds, double minElevationRad,
                                    int samples, std::uint64_t seed) const {
  std::vector<OrbitalElements> sats;
  sats.reserve(ephemeris_.size());
  for (const SatelliteId sid : ephemeris_.satellites()) {
    sats.push_back(ephemeris_.record(sid).elements);
  }
  Rng rng(seed);
  return monteCarloCoverage(sats, tSeconds, minElevationRad, samples, rng)
      .coverageFraction;
}

}  // namespace openspace
