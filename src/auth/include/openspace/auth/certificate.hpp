// Roaming certificates.
//
// §2.2: "The user's home provider should assign the user a digital
// certificate to inform other satellite providers that the user has been
// authenticated by their home network." Certificates here carry an HMAC-
// style tag keyed by the issuing provider's secret.
//
// NOTE: the tag is a simulation-grade keyed hash (64-bit FNV-based), NOT
// cryptographic material — the library models the protocol economics and
// latency, not real key management.
#pragma once

#include <cstdint>
#include <string>

#include <openspace/orbit/ephemeris.hpp>

namespace openspace {

using UserId = std::uint64_t;

/// A roaming credential issued by a user's home ISP after authentication.
struct Certificate {
  UserId user = 0;
  ProviderId homeProvider{};
  double issuedAtS = 0.0;
  double expiresAtS = 0.0;
  std::uint64_t tag = 0;  ///< Keyed integrity tag.

  bool expired(double nowS) const noexcept { return nowS >= expiresAtS; }
};

/// Simulation-grade keyed hash over arbitrary bytes.
std::uint64_t keyedTag(std::uint64_t key, const std::string& data);

/// Per-provider certificate authority.
class CertificateAuthority {
 public:
  /// `secret` is the provider's signing key; `lifetimeS` the validity span.
  CertificateAuthority(ProviderId provider, std::uint64_t secret,
                       double lifetimeS = 86'400.0);

  /// Issue a certificate for an authenticated user at time `nowS`.
  Certificate issue(UserId user, double nowS) const;

  /// Verify a certificate claimed to be issued by this authority: checks
  /// provider, expiry and tag. (A visited ISP holds a verification key per
  /// federation member; modeled as shared knowledge of the secret.)
  bool verify(const Certificate& cert, double nowS) const;

  ProviderId provider() const noexcept { return provider_; }

 private:
  std::uint64_t expectedTag(const Certificate& cert) const;
  ProviderId provider_;
  std::uint64_t secret_;
  double lifetimeS_;
};

}  // namespace openspace
