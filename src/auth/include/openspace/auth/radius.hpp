// RADIUS-style home-ISP authentication.
//
// §2.2: "Upon initial association, the user device identifies its home ISP
// and proceeds to authenticate with it through a standardized protocol such
// as RADIUS. ... an association request from a user has to be authenticated
// by their home satellite provider, and this can be done through ISLs."
#pragma once

#include <unordered_map>

#include <openspace/auth/certificate.hpp>

namespace openspace {

/// Access-Request as carried over the ISL path to the home provider.
struct AccessRequest {
  UserId user = 0;
  ProviderId homeProvider{};
  std::uint64_t credentialProof = 0;  ///< keyedTag(userSecret, nonce).
  std::string nonce;
};

/// Access-Accept / Access-Reject.
struct AccessResponse {
  bool accepted = false;
  std::string reason;
  Certificate certificate;  ///< Valid only when accepted.
};

/// The home provider's AAA server.
class RadiusServer {
 public:
  RadiusServer(ProviderId provider, std::uint64_t caSecret,
               double certLifetimeS = 86'400.0);

  /// Provision a subscriber with a shared secret.
  void enroll(UserId user, std::uint64_t userSecret);

  /// Remove a subscriber. Throws NotFoundError if unknown.
  void revoke(UserId user);

  /// Process an Access-Request at time `nowS`.
  AccessResponse authenticate(const AccessRequest& req, double nowS) const;

  /// Client-side helper: build the proof a genuine subscriber would send.
  static std::uint64_t proveCredential(std::uint64_t userSecret,
                                       const std::string& nonce);

  const CertificateAuthority& authority() const noexcept { return ca_; }
  ProviderId provider() const noexcept { return ca_.provider(); }
  std::size_t subscriberCount() const noexcept { return secrets_.size(); }

 private:
  CertificateAuthority ca_;
  std::unordered_map<UserId, std::uint64_t> secrets_;
};

}  // namespace openspace
