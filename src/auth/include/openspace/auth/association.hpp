// User association (paper §2.2, "User Association").
//
// Users "associate with the available overhead satellite that supports
// OpenSpace": satellites advertise standardized periodic beacons carrying
// orbital information; the user picks the closest-in-range satellite,
// requests association, authenticates with its *home* ISP over ISLs
// (RADIUS), receives a roaming certificate, and is then fully associated —
// even when the serving satellite belongs to a different provider
// (rampant roaming is the OpenSpace norm).
#pragma once

#include <optional>

#include <openspace/auth/radius.hpp>
#include <openspace/mac/beacon.hpp>
#include <openspace/routing/dijkstra.hpp>
#include <openspace/topology/builder.hpp>

namespace openspace {

/// Association lifecycle.
enum class AssociationState {
  Scanning,        ///< Evaluating beacons.
  Authenticating,  ///< Association requested; RADIUS in flight via ISLs.
  Associated,      ///< Authenticated + certified; traffic may flow.
  Disassociated,   ///< Left coverage / moved region.
};

std::string_view associationStateName(AssociationState s) noexcept;

/// Outcome of one association attempt.
struct AssociationResult {
  bool success = false;
  SatelliteId servingSatellite{};
  ProviderId servingProvider{};
  double beaconScanLatencyS = 0.0;  ///< Wait for the chosen satellite's beacon.
  double authLatencyS = 0.0;        ///< RTT of RADIUS over the ISL path.
  double totalLatencyS = 0.0;
  Certificate certificate;
  std::string failureReason;
};

/// One user's outcome in a batched association sweep.
struct UserAssociation {
  bool covered = false;           ///< Any satellite at/above the mask?
  std::uint32_t satelliteIndex = 0;  ///< Into the fleet/beacon list (iff covered).
  SatelliteId satellite{};        ///< Chosen satellite (beacon overload only).
  double slantRangeM = 0.0;       ///< User->satellite range (iff covered).
};

/// Batched association: for every user, the closest satellite at/above
/// `minElevationRad` at time t — the §2.2 selection rule
/// (AssociationAgent::selectSatellite) fanned over the thread pool in
/// fixed chunks. The fleet is propagated and footprint-indexed once;
/// each user then scans O(candidate) satellites instead of the whole
/// fleet. Results are bit-identical to the per-user brute scan and to
/// themselves at any thread count (serial == parallel; hard-gated in
/// bench/bench_coverage_index.cpp). Output order matches `users`.
std::vector<UserAssociation> associateUsers(
    const std::vector<OrbitalElements>& fleet, double tSeconds,
    const std::vector<Geodetic>& users, double minElevationRad);

/// Beacon-list overload: selection over the advertised orbits, with each
/// result's `satellite` filled from the owning beacon.
std::vector<UserAssociation> associateUsers(
    const std::vector<BeaconMessage>& beacons, double tSeconds,
    const std::vector<Geodetic>& users, double minElevationRad);

/// Beacon count at or above which AssociationAgent::selectSatellite
/// evaluates beacons through the shared snapshot + footprint index instead
/// of the per-beacon brute scan. A performance crossover only, never a
/// semantic switch: both paths apply the same elevation and range
/// expressions with the same first-wins ascending tie order, so the winner
/// is identical on either side (pinned by tests at the boundary).
inline constexpr std::size_t kSelectIndexMinBeacons = 512;

/// Client-side association agent for one user terminal.
class AssociationAgent {
 public:
  /// `home` is the user's subscription; `userSecret` the RADIUS credential.
  AssociationAgent(UserId user, ProviderId home, std::uint64_t userSecret,
                   Geodetic location);

  /// Evaluate beacons and pick the serving satellite: the in-range
  /// satellite whose advertised orbit puts it closest at time t. Returns
  /// nullopt when none is visible above `minElevationRad`. Mega-
  /// constellation beacon lists (>= kSelectIndexMinBeacons) go through
  /// the cached snapshot + footprint index; the winner matches the brute
  /// scan exactly.
  std::optional<SatelliteId> selectSatellite(
      const std::vector<BeaconMessage>& beacons, double tSeconds,
      double minElevationRad) const;

  /// Run the full association: satellite selection, beacon wait, RADIUS
  /// round-trip over the ISL path from the serving satellite to the home
  /// provider's ground infrastructure, certificate issuance.
  ///
  /// `graph` must be a snapshot containing the user's node; `homeServer`
  /// is the user's home RADIUS server; `homeGateway` is the NodeId of the
  /// home provider's ground station (where the AAA server lives).
  AssociationResult associate(const std::vector<BeaconMessage>& beacons,
                              const NetworkGraph& graph,
                              const TopologyBuilder& topo,
                              const RadiusServer& homeServer, NodeId homeGateway,
                              double tSeconds, double minElevationRad,
                              const BeaconSchedule& schedule);

  /// Handle leaving the region (paper: re-association is required, but it
  /// is rare relative to satellite handoffs).
  void moveTo(Geodetic newLocation);

  AssociationState state() const noexcept { return state_; }
  const std::optional<Certificate>& certificate() const noexcept { return cert_; }
  UserId user() const noexcept { return user_; }
  ProviderId homeProvider() const noexcept { return home_; }
  const Geodetic& location() const noexcept { return location_; }
  std::optional<SatelliteId> servingSatellite() const noexcept { return serving_; }

  /// Adopt a successor satellite during a predictive handover: keeps the
  /// certificate, skips re-authentication (§2.2 Satellite Handovers).
  /// Throws StateError unless currently associated.
  void adoptSuccessor(SatelliteId successor);

  /// Time-aware adoption: an expired roaming certificate cannot ride a
  /// predictive handover, so if the certificate is expired at `nowS` the
  /// agent drops to Disassociated (certificate cleared) and returns false
  /// instead of switching — the session must re-associate through RADIUS.
  /// Returns true (and adopts) when the certificate is still valid. Same
  /// StateError as the untimed overload unless currently associated.
  bool adoptSuccessor(SatelliteId successor, double nowS);

 private:
  UserId user_;
  ProviderId home_;
  std::uint64_t secret_;
  Geodetic location_;
  AssociationState state_ = AssociationState::Scanning;
  std::optional<Certificate> cert_;
  std::optional<SatelliteId> serving_;
};

}  // namespace openspace
