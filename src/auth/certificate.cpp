#include <openspace/auth/certificate.hpp>

#include <openspace/geo/error.hpp>

namespace openspace {

std::uint64_t keyedTag(std::uint64_t key, const std::string& data) {
  // FNV-1a seeded with the key, then finalized with a splitmix round.
  std::uint64_t h = 1469598103934665603ull ^ key;
  for (const char ch : data) {
    h ^= static_cast<unsigned char>(ch);
    h *= 1099511628211ull;
  }
  h ^= h >> 30;
  h *= 0xBF58476D1CE4E5B9ull;
  h ^= h >> 27;
  h *= 0x94D049BB133111EBull;
  h ^= h >> 31;
  return h;
}

CertificateAuthority::CertificateAuthority(ProviderId provider,
                                           std::uint64_t secret, double lifetimeS)
    : provider_(provider), secret_(secret), lifetimeS_(lifetimeS) {
  if (lifetimeS <= 0.0) {
    throw InvalidArgumentError("CertificateAuthority: lifetime must be > 0");
  }
}

std::uint64_t CertificateAuthority::expectedTag(const Certificate& cert) const {
  return keyedTag(secret_, std::to_string(cert.user) + '|' +
                               std::to_string(cert.homeProvider.value()) + '|' +
                               std::to_string(cert.issuedAtS) + '|' +
                               std::to_string(cert.expiresAtS));
}

Certificate CertificateAuthority::issue(UserId user, double nowS) const {
  Certificate cert;
  cert.user = user;
  cert.homeProvider = provider_;
  cert.issuedAtS = nowS;
  cert.expiresAtS = nowS + lifetimeS_;
  cert.tag = expectedTag(cert);
  return cert;
}

bool CertificateAuthority::verify(const Certificate& cert, double nowS) const {
  if (cert.homeProvider != provider_) return false;
  if (cert.expired(nowS)) return false;
  return cert.tag == expectedTag(cert);
}

}  // namespace openspace
