#include <openspace/auth/association.hpp>

#include <cmath>
#include <limits>

#include <openspace/concurrency/parallel.hpp>
#include <openspace/coverage/footprint_index.hpp>
#include <openspace/geo/error.hpp>
#include <openspace/geo/units.hpp>
#include <openspace/orbit/snapshot.hpp>
#include <openspace/orbit/visibility.hpp>

namespace openspace {

namespace {

/// Users per parallelFor chunk in associateUsers. Fixed boundaries + each
/// user writing only its own slot keep serial and parallel sweeps
/// bit-identical.
constexpr std::size_t kUserChunk = 512;

}  // namespace

std::string_view associationStateName(AssociationState s) noexcept {
  switch (s) {
    case AssociationState::Scanning: return "scanning";
    case AssociationState::Authenticating: return "authenticating";
    case AssociationState::Associated: return "associated";
    case AssociationState::Disassociated: return "disassociated";
  }
  return "?";
}

AssociationAgent::AssociationAgent(UserId user, ProviderId home,
                                   std::uint64_t userSecret, Geodetic location)
    : user_(user), home_(home), secret_(userSecret), location_(location) {}

std::optional<SatelliteId> AssociationAgent::selectSatellite(
    const std::vector<BeaconMessage>& beacons, double tSeconds,
    double minElevationRad) const {
  // "The user can evaluate received beacons to identify which satellite is
  // in closest range": positions come from the orbital elements each beacon
  // advertises, not from a central service.
  const Vec3 userEcef = geodeticToEcef(location_);
  if (beacons.size() >= kSelectIndexMinBeacons) {
    // Mega-constellation path: at this size the brute scan pays one
    // propagation per beacon anyway, so compiling the shared snapshot +
    // footprint index (both O(N), both LRU-cached across the agents of a
    // simulation step) wins, and the per-query cost drops from O(N) to
    // O(candidates). closestVisible applies the identical elevation and
    // range expressions with the identical first-wins ascending tie order
    // (snapshot positions are bit-for-bit the scalar propagation), so the
    // winner matches the brute scan below exactly.
    std::vector<OrbitalElements> fleet;
    fleet.reserve(beacons.size());
    for (const BeaconMessage& b : beacons) fleet.push_back(b.elements);
    const auto snap = SnapshotCache::global().at(fleet, tSeconds);
    const auto footprints = FootprintIndex2::compiled(snap, minElevationRad);
    const auto best = footprints->closestVisible(userEcef);
    if (!best) return std::nullopt;
    return beacons[*best].satellite;
  }
  // One-shot small-list selection keeps the O(N) brute scan: compiling a
  // footprint index for a handful of beacons costs more than it saves.
  // The batched associateUsers path amortizes the index across users and
  // produces the identical winner (first-wins ascending tie order, same
  // elevation and range expressions).
  double bestRange = std::numeric_limits<double>::infinity();
  std::optional<SatelliteId> best;
  for (const BeaconMessage& b : beacons) {
    const Vec3 satEcef = eciToEcef(positionEci(b.elements, tSeconds), tSeconds);
    if (elevationAngleRad(userEcef, satEcef) < minElevationRad) continue;
    const double range = userEcef.distanceTo(satEcef);
    if (range < bestRange) {
      bestRange = range;
      best = b.satellite;
    }
  }
  return best;
}

std::vector<UserAssociation> associateUsers(
    const std::vector<OrbitalElements>& fleet, double tSeconds,
    const std::vector<Geodetic>& users, double minElevationRad) {
  std::vector<UserAssociation> out(users.size());
  if (fleet.empty() || users.empty()) return out;
  const auto snap = SnapshotCache::global().at(fleet, tSeconds);
  const auto footprints = FootprintIndex2::compiled(snap, minElevationRad);
  parallelFor(users.size(), kUserChunk,
              [&](std::size_t begin, std::size_t end) {
                for (std::size_t u = begin; u < end; ++u) {
                  const Vec3 userEcef = geodeticToEcef(users[u]);
                  const auto best = footprints->closestVisible(userEcef);
                  if (!best) continue;
                  out[u].covered = true;
                  out[u].satelliteIndex = static_cast<std::uint32_t>(*best);
                  out[u].slantRangeM = userEcef.distanceTo(snap->ecef(*best));
                }
              });
  return out;
}

std::vector<UserAssociation> associateUsers(
    const std::vector<BeaconMessage>& beacons, double tSeconds,
    const std::vector<Geodetic>& users, double minElevationRad) {
  std::vector<OrbitalElements> fleet;
  fleet.reserve(beacons.size());
  for (const BeaconMessage& b : beacons) fleet.push_back(b.elements);
  std::vector<UserAssociation> out =
      associateUsers(fleet, tSeconds, users, minElevationRad);
  for (UserAssociation& a : out) {
    if (a.covered) a.satellite = beacons[a.satelliteIndex].satellite;
  }
  return out;
}

AssociationResult AssociationAgent::associate(
    const std::vector<BeaconMessage>& beacons, const NetworkGraph& graph,
    const TopologyBuilder& topo, const RadiusServer& homeServer,
    NodeId homeGateway, double tSeconds, double minElevationRad,
    const BeaconSchedule& schedule) {
  AssociationResult out;
  state_ = AssociationState::Scanning;
  cert_.reset();
  serving_.reset();

  const auto chosen = selectSatellite(beacons, tSeconds, minElevationRad);
  if (!chosen) {
    out.failureReason = "no OpenSpace satellite above elevation mask";
    return out;
  }

  // Link-layer association can only start at the satellite's next beacon.
  const double beaconAt = schedule.nextBeaconTime(*chosen, tSeconds);
  out.beaconScanLatencyS = beaconAt - tSeconds;

  state_ = AssociationState::Authenticating;
  const NodeId satNode = topo.nodeOf(*chosen);
  out.servingSatellite = *chosen;
  out.servingProvider = graph.node(satNode).provider;

  // RADIUS round trip rides the ISL path serving-satellite -> home gateway.
  const Route toHome = shortestPath(graph, satNode, homeGateway, latencyCost());
  if (!toHome.valid()) {
    out.failureReason = "home provider unreachable over ISLs";
    state_ = AssociationState::Scanning;
    return out;
  }
  // User->sat uplink leg + request + response (2x path) + processing.
  const Vec3 userEcef = geodeticToEcef(location_);
  const Vec3 satEcef =
      eciToEcef(topo.ephemeris().positionEci(*chosen, beaconAt), beaconAt);
  const double uplinkS = userEcef.distanceTo(satEcef) / kSpeedOfLightMps;
  constexpr double kAaaProcessingS = 5e-3;
  out.authLatencyS = 2.0 * (uplinkS + toHome.totalDelayS()) + kAaaProcessingS;

  AccessRequest req;
  req.user = user_;
  req.homeProvider = home_;
  req.nonce = std::to_string(user_) + '@' + std::to_string(beaconAt);
  req.credentialProof = RadiusServer::proveCredential(secret_, req.nonce);
  const double authDoneS = beaconAt + out.authLatencyS;
  const AccessResponse resp = homeServer.authenticate(req, authDoneS);
  if (!resp.accepted) {
    out.failureReason = "RADIUS reject: " + resp.reason;
    state_ = AssociationState::Scanning;
    return out;
  }

  cert_ = resp.certificate;
  serving_ = *chosen;
  state_ = AssociationState::Associated;
  out.success = true;
  out.certificate = resp.certificate;
  out.totalLatencyS = out.beaconScanLatencyS + out.authLatencyS;
  return out;
}

void AssociationAgent::moveTo(Geodetic newLocation) {
  // Leaving the region invalidates the association (paper: the user must
  // run association + authentication again; rare vs. satellite handoffs).
  location_ = newLocation;
  state_ = AssociationState::Disassociated;
  serving_.reset();
  cert_.reset();
}

void AssociationAgent::adoptSuccessor(SatelliteId successor) {
  if (state_ != AssociationState::Associated) {
    throw StateError("adoptSuccessor: user is not associated");
  }
  serving_ = successor;
}

bool AssociationAgent::adoptSuccessor(SatelliteId successor, double nowS) {
  if (state_ != AssociationState::Associated) {
    throw StateError("adoptSuccessor: user is not associated");
  }
  if (!cert_ || cert_->expired(nowS)) {
    state_ = AssociationState::Disassociated;
    serving_.reset();
    cert_.reset();
    return false;
  }
  serving_ = successor;
  return true;
}

}  // namespace openspace
