#include <openspace/auth/association.hpp>

#include <limits>

#include <openspace/geo/error.hpp>
#include <openspace/geo/units.hpp>
#include <openspace/orbit/visibility.hpp>

namespace openspace {

std::string_view associationStateName(AssociationState s) noexcept {
  switch (s) {
    case AssociationState::Scanning: return "scanning";
    case AssociationState::Authenticating: return "authenticating";
    case AssociationState::Associated: return "associated";
    case AssociationState::Disassociated: return "disassociated";
  }
  return "?";
}

AssociationAgent::AssociationAgent(UserId user, ProviderId home,
                                   std::uint64_t userSecret, Geodetic location)
    : user_(user), home_(home), secret_(userSecret), location_(location) {}

std::optional<SatelliteId> AssociationAgent::selectSatellite(
    const std::vector<BeaconMessage>& beacons, double tSeconds,
    double minElevationRad) const {
  // "The user can evaluate received beacons to identify which satellite is
  // in closest range": positions come from the orbital elements each beacon
  // advertises, not from a central service.
  const Vec3 userEcef = geodeticToEcef(location_);
  double bestRange = std::numeric_limits<double>::infinity();
  std::optional<SatelliteId> best;
  for (const BeaconMessage& b : beacons) {
    const Vec3 satEcef = eciToEcef(positionEci(b.elements, tSeconds), tSeconds);
    if (elevationAngleRad(userEcef, satEcef) < minElevationRad) continue;
    const double range = userEcef.distanceTo(satEcef);
    if (range < bestRange) {
      bestRange = range;
      best = b.satellite;
    }
  }
  return best;
}

AssociationResult AssociationAgent::associate(
    const std::vector<BeaconMessage>& beacons, const NetworkGraph& graph,
    const TopologyBuilder& topo, const RadiusServer& homeServer,
    NodeId homeGateway, double tSeconds, double minElevationRad,
    const BeaconSchedule& schedule) {
  AssociationResult out;
  state_ = AssociationState::Scanning;
  cert_.reset();
  serving_.reset();

  const auto chosen = selectSatellite(beacons, tSeconds, minElevationRad);
  if (!chosen) {
    out.failureReason = "no OpenSpace satellite above elevation mask";
    return out;
  }

  // Link-layer association can only start at the satellite's next beacon.
  const double beaconAt = schedule.nextBeaconTime(*chosen, tSeconds);
  out.beaconScanLatencyS = beaconAt - tSeconds;

  state_ = AssociationState::Authenticating;
  const NodeId satNode = topo.nodeOf(*chosen);
  out.servingSatellite = *chosen;
  out.servingProvider = graph.node(satNode).provider;

  // RADIUS round trip rides the ISL path serving-satellite -> home gateway.
  const Route toHome = shortestPath(graph, satNode, homeGateway, latencyCost());
  if (!toHome.valid()) {
    out.failureReason = "home provider unreachable over ISLs";
    state_ = AssociationState::Scanning;
    return out;
  }
  // User->sat uplink leg + request + response (2x path) + processing.
  const Vec3 userEcef = geodeticToEcef(location_);
  const Vec3 satEcef =
      eciToEcef(topo.ephemeris().positionEci(*chosen, beaconAt), beaconAt);
  const double uplinkS = userEcef.distanceTo(satEcef) / kSpeedOfLightMps;
  constexpr double kAaaProcessingS = 5e-3;
  out.authLatencyS = 2.0 * (uplinkS + toHome.totalDelayS()) + kAaaProcessingS;

  AccessRequest req;
  req.user = user_;
  req.homeProvider = home_;
  req.nonce = std::to_string(user_) + '@' + std::to_string(beaconAt);
  req.credentialProof = RadiusServer::proveCredential(secret_, req.nonce);
  const double authDoneS = beaconAt + out.authLatencyS;
  const AccessResponse resp = homeServer.authenticate(req, authDoneS);
  if (!resp.accepted) {
    out.failureReason = "RADIUS reject: " + resp.reason;
    state_ = AssociationState::Scanning;
    return out;
  }

  cert_ = resp.certificate;
  serving_ = *chosen;
  state_ = AssociationState::Associated;
  out.success = true;
  out.certificate = resp.certificate;
  out.totalLatencyS = out.beaconScanLatencyS + out.authLatencyS;
  return out;
}

void AssociationAgent::moveTo(Geodetic newLocation) {
  // Leaving the region invalidates the association (paper: the user must
  // run association + authentication again; rare vs. satellite handoffs).
  location_ = newLocation;
  state_ = AssociationState::Disassociated;
  serving_.reset();
  cert_.reset();
}

void AssociationAgent::adoptSuccessor(SatelliteId successor) {
  if (state_ != AssociationState::Associated) {
    throw StateError("adoptSuccessor: user is not associated");
  }
  serving_ = successor;
}

}  // namespace openspace
