#include <openspace/auth/radius.hpp>

#include <openspace/geo/error.hpp>

namespace openspace {

RadiusServer::RadiusServer(ProviderId provider, std::uint64_t caSecret,
                           double certLifetimeS)
    : ca_(provider, caSecret, certLifetimeS) {}

void RadiusServer::enroll(UserId user, std::uint64_t userSecret) {
  secrets_[user] = userSecret;
}

void RadiusServer::revoke(UserId user) {
  if (secrets_.erase(user) == 0) {
    throw NotFoundError("RadiusServer::revoke: unknown user");
  }
}

std::uint64_t RadiusServer::proveCredential(std::uint64_t userSecret,
                                            const std::string& nonce) {
  return keyedTag(userSecret, nonce);
}

AccessResponse RadiusServer::authenticate(const AccessRequest& req,
                                          double nowS) const {
  AccessResponse resp;
  if (req.homeProvider != ca_.provider()) {
    resp.reason = "request routed to wrong home provider";
    return resp;
  }
  const auto it = secrets_.find(req.user);
  if (it == secrets_.end()) {
    resp.reason = "unknown subscriber";
    return resp;
  }
  if (req.credentialProof != proveCredential(it->second, req.nonce)) {
    resp.reason = "credential proof mismatch";
    return resp;
  }
  resp.accepted = true;
  resp.certificate = ca_.issue(req.user, nowS);
  return resp;
}

}  // namespace openspace
